package cluster

import (
	"errors"
	"testing"

	"roadrunner/internal/campaign"
)

func tinyClusterManifest() campaign.Manifest {
	return campaign.Manifest{
		Name:   "cluster-tiny",
		Env:    campaign.EnvTiny,
		Rounds: 2,
		Strategies: []campaign.StrategySpec{
			{Kind: "fedavg"},
			{Kind: "opp"},
		},
		Seeds: []uint64{1},
	}
}

func newTestCoordinator(t *testing.T, dir string) *Coordinator {
	t.Helper()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCoordinator(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// drive runs the full worker protocol — claim, start, execute, complete
// — for one node until it receives no work.
func drive(t *testing.T, co *Coordinator, runner *Runner, node string) int {
	t.Helper()
	ran := 0
	for {
		asgs, err := co.RequestWork(node, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(asgs) == 0 {
			return ran
		}
		for _, asg := range asgs {
			if err := co.StartRun(node, asg.Lease); err != nil {
				continue
			}
			if err := co.CompleteRun(node, asg.Lease, runner.Run(asg)); err != nil {
				t.Fatal(err)
			}
			ran++
		}
	}
}

// TestCoordinatorSingleWorkerLifecycle walks one node through the whole
// protocol and checks the campaign lands done with a journal that makes
// it resumable.
func TestCoordinatorSingleWorkerLifecycle(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 2)
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	if ran := drive(t, co, runner, "w1"); ran != 2 {
		t.Fatalf("worker ran %d assignments, want 2", ran)
	}
	c, err := co.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if !st.Done || st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("campaign status: %+v", st)
	}
	// The journal proves both runs complete.
	_, runs, err := campaign.ReadJournal(co.Store().JournalPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("journal replay found %d runs, want 2", len(runs))
	}
	nodes := co.Nodes()
	if len(nodes) != 1 || nodes[0].Executed != 2 || nodes[0].Inflight != 0 {
		t.Fatalf("node stats: %+v", nodes)
	}
}

// TestCoordinatorCachedSubmitFinishesWithoutClaims submits a manifest
// whose every run is already in the shared store: the campaign must
// finish instantly as pure cache hits, enqueueing nothing.
func TestCoordinatorCachedSubmitFinishesWithoutClaims(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 2)
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	if _, err := co.Submit(tinyClusterManifest()); err != nil {
		t.Fatal(err)
	}
	drive(t, co, runner, "w1")

	id2, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	c, err := co.Campaign(id2)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if !st.Done || st.Cached != 2 {
		t.Fatalf("warm resubmission not a pure cache pass: %+v", st)
	}
	if asgs, _ := co.RequestWork("w1", 4); len(asgs) != 0 {
		t.Fatalf("warm resubmission enqueued work: %+v", asgs)
	}
}

// TestCoordinatorResumeAfterRestart kills the coordinator mid-campaign
// and recovers on a fresh one: journal + queue log must leave only the
// unfinished run claimable, and the merged artifact must match a
// clean-run reference.
func TestCoordinatorResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 1)
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	// Execute exactly one of the two runs, then "crash" the coordinator.
	asgs, err := co.RequestWork("w1", 1)
	if err != nil || len(asgs) != 1 {
		t.Fatalf("claim: %v %v", asgs, err)
	}
	if err := co.StartRun("w1", asgs[0].Lease); err != nil {
		t.Fatal(err)
	}
	if err := co.CompleteRun("w1", asgs[0].Lease, runner.Run(asgs[0])); err != nil {
		t.Fatal(err)
	}
	co.Close()

	co2 := newTestCoordinator(t, dir)
	co2.RegisterNode("w1", 1)
	if err := co2.Resume(id); err != nil {
		t.Fatal(err)
	}
	c, err := co2.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Cached != 1 || st.Done {
		t.Fatalf("resumed status before re-execution: %+v", st)
	}
	if ran := drive(t, co2, runner, "w1"); ran != 1 {
		t.Fatalf("resume re-ran %d assignments, want 1", ran)
	}
	if st := c.Status(); !st.Done || st.Failed != 0 {
		t.Fatalf("resumed campaign status: %+v", st)
	}
	got, err := co2.MergedResult(id)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the same manifest on a fresh single-node scheduler.
	refStore, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refC, err := campaign.NewCampaign("ref", tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	sched := campaign.NewScheduler(campaign.Options{Workers: 1, Store: refStore, Backoff: func(int) {}})
	if _, err := sched.RunCampaign(refC); err != nil {
		t.Fatal(err)
	}
	want, err := campaign.MergedCanonicalBytes(refC.Specs(), refStore)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed merge differs from reference (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCoordinatorResumeRetriesUnstoredTerminalRuns is the resume-hang
// regression: a run that is terminal in the queue log but absent from
// the store (here a completion demoted to failed) must be re-issued on
// resume, not silently counted as outstanding forever. Before the fix,
// Enqueue was a no-op for the known ref while remaining was still
// incremented, so no lease was ever granted and the campaign never
// finished.
func TestCoordinatorResumeRetriesUnstoredTerminalRuns(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 1)
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	// Execute the first run properly; report the second done without a
	// store publish so the coordinator demotes it to failed — a ref that
	// is terminal in the queue log with nothing servable in the store.
	for i := 0; i < 2; i++ {
		asgs, err := co.RequestWork("w1", 1)
		if err != nil || len(asgs) != 1 {
			t.Fatalf("claim %d: %v %v", i, asgs, err)
		}
		if err := co.StartRun("w1", asgs[0].Lease); err != nil {
			t.Fatal(err)
		}
		out := Outcome{State: campaign.RunDone, Attempts: 1}
		if i == 0 {
			out = runner.Run(asgs[0])
		}
		if err := co.CompleteRun("w1", asgs[0].Lease, out); err != nil {
			t.Fatal(err)
		}
	}
	c, err := co.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); !st.Done || st.Failed != 1 {
		t.Fatalf("pre-crash status: %+v", st)
	}
	co.Close()

	co2 := newTestCoordinator(t, dir)
	co2.RegisterNode("w1", 1)
	if err := co2.Resume(id); err != nil {
		t.Fatal(err)
	}
	// The failed run must be claimable again and the campaign must finish.
	if ran := drive(t, co2, runner, "w1"); ran != 1 {
		t.Fatalf("resume re-ran %d assignments, want 1", ran)
	}
	c2, err := co2.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Status(); !st.Done || st.Failed != 0 || st.Completed+st.Cached != 2 {
		t.Fatalf("resumed campaign status: %+v", st)
	}
	if _, err := co2.MergedResult(id); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorRestartMintsFreshCampaignIDs: the ID sequence must
// survive a coordinator restart. Before the fix, the first submission of
// a new epoch reproduced the previous epoch's c0001-<hash> for the same
// manifest and silently re-attached to its journal and queue refs.
func TestCoordinatorRestartMintsFreshCampaignIDs(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 2)
	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(workerStore, 2, func(int) {})
	id1, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, co, runner, "w1")
	co.Close()

	co2 := newTestCoordinator(t, dir)
	co2.RegisterNode("w1", 2)
	id2, err := co2.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Fatalf("restarted coordinator reused campaign ID %s", id1)
	}
	// The new campaign is its own registration: warm store, pure cache
	// pass, and the old ID is resumable separately.
	c, err := co2.Campaign(id2)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); !st.Done || st.Cached != 2 {
		t.Fatalf("new-epoch resubmission status: %+v", st)
	}
}

// TestCoordinatorRejectsForeignLeaseReports: start and completion are
// accepted only from the node holding the lease, so one node cannot
// complete another's claim or skew its counters.
func TestCoordinatorRejectsForeignLeaseReports(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 1)
	co.RegisterNode("w2", 1)
	if _, err := co.Submit(tinyClusterManifest()); err != nil {
		t.Fatal(err)
	}
	asgs, err := co.RequestWork("w1", 1)
	if err != nil || len(asgs) != 1 {
		t.Fatalf("claim: %v %v", asgs, err)
	}
	if err := co.StartRun("w2", asgs[0].Lease); !errors.Is(err, campaign.ErrStaleLease) {
		t.Fatalf("foreign start err = %v, want ErrStaleLease", err)
	}
	// Completing before the start gate is rejected even by the holder.
	if err := co.CompleteRun("w1", asgs[0].Lease, Outcome{State: campaign.RunDone}); !errors.Is(err, campaign.ErrStaleLease) {
		t.Fatalf("unstarted complete err = %v, want ErrStaleLease", err)
	}
	if err := co.StartRun("w1", asgs[0].Lease); err != nil {
		t.Fatal(err)
	}
	if err := co.CompleteRun("w2", asgs[0].Lease, Outcome{State: campaign.RunDone}); !errors.Is(err, campaign.ErrStaleLease) {
		t.Fatalf("foreign complete err = %v, want ErrStaleLease", err)
	}
	for _, n := range co.Nodes() {
		switch n.Name {
		case "w1":
			if n.Inflight != 1 {
				t.Fatalf("holder inflight = %d, want 1: %+v", n.Inflight, n)
			}
		case "w2":
			if n.Inflight != 0 || n.Executed != 0 {
				t.Fatalf("foreign node counters moved: %+v", n)
			}
		}
	}
}

// TestCoordinatorStealFreesVictimSlotExactlyOnce: after a steal, the
// victim's stale Start must not decrement its inflight a second time —
// the steal already released that slot. Before the fix the double
// decrement undercounted inflight, letting nodes claim past capacity.
func TestCoordinatorStealFreesVictimSlotExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 2)
	if _, err := co.Submit(tinyClusterManifest()); err != nil {
		t.Fatal(err)
	}
	// w1 claims both runs, then sits on them past StealAfter. The thief
	// registers afterwards so round-robin doesn't defer w1's claims.
	asgs, err := co.RequestWork("w1", 2)
	if err != nil || len(asgs) != 2 {
		t.Fatalf("claim: %v %v", asgs, err)
	}
	co.RegisterNode("w2", 1)
	for i := 0; i < 4; i++ {
		co.Advance()
		if err := co.Heartbeat("w1"); err != nil {
			t.Fatal(err)
		}
	}
	stolen, err := co.RequestWork("w2", 1)
	if err != nil || len(stolen) != 1 {
		t.Fatalf("steal: %v %v", stolen, err)
	}
	// The victim tries to start the stolen assignment: stale, and its
	// inflight stays at the one claim it still holds.
	var victimLease campaign.LeaseID
	for _, asg := range asgs {
		if asg.Ref == stolen[0].Ref {
			victimLease = asg.Lease
		}
	}
	if err := co.StartRun("w1", victimLease); !errors.Is(err, campaign.ErrStaleLease) {
		t.Fatalf("victim start err = %v, want ErrStaleLease", err)
	}
	for _, n := range co.Nodes() {
		if n.Name == "w1" && n.Inflight != 1 {
			t.Fatalf("victim inflight = %d after steal + stale start, want 1", n.Inflight)
		}
		if n.Name == "w2" && n.Inflight != 1 {
			t.Fatalf("thief inflight = %d, want 1", n.Inflight)
		}
	}
}

// TestCoordinatorDemotesUnstoredCompletion: a node reporting success
// without having published its result to the shared store is lying about
// durability; the coordinator must demote the run to failed.
func TestCoordinatorDemotesUnstoredCompletion(t *testing.T) {
	dir := t.TempDir()
	co := newTestCoordinator(t, dir)
	co.RegisterNode("w1", 1)
	id, err := co.Submit(tinyClusterManifest())
	if err != nil {
		t.Fatal(err)
	}
	asgs, err := co.RequestWork("w1", 1)
	if err != nil || len(asgs) != 1 {
		t.Fatalf("claim: %v %v", asgs, err)
	}
	if err := co.StartRun("w1", asgs[0].Lease); err != nil {
		t.Fatal(err)
	}
	// Report done without any store publish.
	if err := co.CompleteRun("w1", asgs[0].Lease, Outcome{State: campaign.RunDone, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	c, err := co.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range c.Status().Runs {
		if run.Key == asgs[0].Key {
			if run.State != campaign.RunFailed || run.Error == "" {
				t.Fatalf("unstored completion not demoted: %+v", run)
			}
		}
	}
}

// TestCoordinatorRejectsUnknownNodes: claims and heartbeats require
// registration.
func TestCoordinatorRejectsUnknownNodes(t *testing.T) {
	co := newTestCoordinator(t, t.TempDir())
	if err := co.Heartbeat("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("heartbeat err = %v", err)
	}
	if _, err := co.RequestWork("ghost", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("claim err = %v", err)
	}
	if _, err := co.Campaign("c9999-none"); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("campaign err = %v", err)
	}
}

// TestCoordinatorMarksSilentNodesDead advances the clock past the lease
// TTL without heartbeats: the node must be declared dead and revive on
// its next heartbeat.
func TestCoordinatorMarksSilentNodesDead(t *testing.T) {
	co := newTestCoordinator(t, t.TempDir())
	co.RegisterNode("w1", 1)
	events, cancel := co.Subscribe()
	defer cancel()
	for i := 0; i < 7; i++ {
		co.Advance()
	}
	nodes := co.Nodes()
	if len(nodes) != 1 || nodes[0].Alive {
		t.Fatalf("silent node still alive: %+v", nodes)
	}
	if err := co.Heartbeat("w1"); err != nil {
		t.Fatal(err)
	}
	if nodes := co.Nodes(); !nodes[0].Alive {
		t.Fatalf("heartbeat did not revive node: %+v", nodes)
	}
	var types []string
	for len(events) > 0 {
		types = append(types, (<-events).Type)
	}
	var sawDead, sawRevived bool
	for _, ty := range types {
		switch ty {
		case "node-dead":
			sawDead = true
		case "node-revived":
			sawRevived = true
		}
	}
	if !sawDead || !sawRevived {
		t.Fatalf("events %v missing node-dead/node-revived", types)
	}
}
