// Package cluster fans campaign manifests across multiple roadrunnerd
// worker nodes. A single coordinator owns the durable work queue
// (campaign.Queue), the campaign journals, and the shared result store;
// workers register, heartbeat, claim runs through a pluggable routing
// policy, execute them against the shared store, and report outcomes.
//
// The design leans on two existing invariants instead of inventing new
// distributed-consensus machinery:
//
//   - run results are content-addressed, so two nodes publishing the same
//     run converge on identical bytes and a re-issued claim after a node
//     death becomes a store hit rather than a divergent re-execution;
//   - campaign journals and the queue log are append-only fsync'd JSONL,
//     so a coordinator or worker crash leaves the campaign resumable and
//     the final merged artifact byte-identical to a single-node run.
//
// All lease timing runs on the queue's logical Tick clock, advanced by
// Coordinator.Advance. Production drives Advance from a service-edge
// timer in cmd/roadrunnerd; the chaos harness (chaostest) drives it from
// its deterministic round loop. Nothing in this package reads the host
// clock.
package cluster

import (
	"roadrunner/internal/campaign"
)

// Assignment is one unit of work granted to a node: the lease that
// authorizes it, plus everything needed to execute and report it.
type Assignment struct {
	Campaign string           `json:"campaign"`
	Ref      string           `json:"ref"`
	Key      string           `json:"key"`
	Lease    campaign.LeaseID `json:"lease"`
	Spec     campaign.RunSpec `json:"spec"`
}

// Outcome is a node's report for one finished assignment.
type Outcome struct {
	State         campaign.RunState `json:"state"`
	Cached        bool              `json:"cached,omitempty"`
	Attempts      int               `json:"attempts,omitempty"`
	FinalAccuracy float64           `json:"final_accuracy,omitempty"`
	EndS          float64           `json:"end_s,omitempty"`
	Error         string            `json:"error,omitempty"`
}

// Event is one entry on the coordinator's merged progress stream. The
// chaos harness keys its fault schedule off these, and the coordinator's
// SSE endpoint interleaves them with per-campaign run events.
//
// Types: node-join, node-dead, node-revived, claim, steal, start,
// complete, stale-complete, lease-expired, campaign-done.
type Event struct {
	Type     string        `json:"type"`
	Node     string        `json:"node,omitempty"`
	Campaign string        `json:"campaign,omitempty"`
	Ref      string        `json:"ref,omitempty"`
	Key      string        `json:"key,omitempty"`
	Tick     campaign.Tick `json:"tick"`
	Detail   string        `json:"detail,omitempty"`
}

// NodeStatus is the externally visible state of one registered worker.
type NodeStatus struct {
	Name     string        `json:"name"`
	Alive    bool          `json:"alive"`
	Capacity int           `json:"capacity"`
	Inflight int           `json:"inflight"`
	Granted  int           `json:"granted"`
	Executed int           `json:"executed"`
	Cached   int           `json:"cached"`
	LastSeen campaign.Tick `json:"last_seen"`
}
