package cluster

import (
	"fmt"
	"testing"
)

// Routing policies must be pure functions of (queue state, node stats):
// same inputs, same pick, no mutation, no hidden state. The chaos
// harness's determinism rests on this, so it is pinned here as a
// property over a grid of synthetic cluster states.

func policyFixtures() ([][]PendingRun, [][]NodeStats) {
	pendings := [][]PendingRun{
		{},
		{{Ref: "c1/a", Key: "a", Group: "g1"}},
		{
			{Ref: "c1/a", Key: "a", Group: "g1"},
			{Ref: "c1/b", Key: "b", Group: "g2"},
			{Ref: "c1/c", Key: "c", Group: "g1"},
		},
	}
	nodeSets := [][]NodeStats{
		{
			{Name: "w1", Alive: true, Capacity: 2},
			{Name: "w2", Alive: true, Capacity: 2},
		},
		{
			{Name: "w1", Alive: true, Capacity: 2, Inflight: 2, Granted: 4},
			{Name: "w2", Alive: true, Capacity: 2, Granted: 1, Groups: []string{"g1"}},
			{Name: "w3", Alive: false, Capacity: 2},
		},
		{
			{Name: "w1", Alive: true, Capacity: 1, Inflight: 1, Granted: 2, Groups: []string{"g2"}},
			{Name: "w2", Alive: true, Capacity: 4, Inflight: 1, Granted: 3, Groups: []string{"g1"}},
		},
	}
	return pendings, nodeSets
}

func copyPending(in []PendingRun) []PendingRun { return append([]PendingRun(nil), in...) }

func copyNodes(in []NodeStats) []NodeStats {
	out := append([]NodeStats(nil), in...)
	for i := range out {
		out[i].Groups = append([]string(nil), out[i].Groups...)
	}
	return out
}

func nodesEqual(a, b []NodeStats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Alive != b[i].Alive ||
			a[i].Inflight != b[i].Inflight || a[i].Capacity != b[i].Capacity ||
			a[i].Granted != b[i].Granted || len(a[i].Groups) != len(b[i].Groups) {
			return false
		}
		for j := range a[i].Groups {
			if a[i].Groups[j] != b[i].Groups[j] {
				return false
			}
		}
	}
	return true
}

// TestPoliciesArePureFunctions calls every policy repeatedly over a grid
// of (pending, nodes, requester) states: picks must be identical across
// calls, in range, and the inputs must come back unmodified.
func TestPoliciesArePureFunctions(t *testing.T) {
	pendings, nodeSets := policyFixtures()
	for _, pol := range []Policy{RoundRobin{}, LeastLoaded{}, ConfigAffinity{}} {
		for pi, pending := range pendings {
			for ni, nodes := range nodeSets {
				for _, requester := range []string{"w1", "w2", "w3", "ghost"} {
					name := fmt.Sprintf("%s/p%d/n%d/%s", pol.Name(), pi, ni, requester)
					t.Run(name, func(t *testing.T) {
						pSnap, nSnap := copyPending(pending), copyNodes(nodes)
						first := pol.Pick(copyPending(pending), copyNodes(nodes), requester)
						for rep := 0; rep < 3; rep++ {
							p, n := copyPending(pending), copyNodes(nodes)
							got := pol.Pick(p, n, requester)
							if got != first {
								t.Fatalf("pick changed across identical calls: %d then %d", first, got)
							}
							if !nodesEqual(n, nSnap) || len(p) != len(pSnap) {
								t.Fatal("policy mutated its inputs")
							}
						}
						if first < -1 || first >= len(pending) {
							t.Fatalf("pick %d out of range for %d pending", first, len(pending))
						}
						if len(pending) == 0 && first != -1 {
							t.Fatalf("pick %d from an empty queue", first)
						}
					})
				}
			}
		}
	}
}

func TestRoundRobinDefersToUnderGrantedNodes(t *testing.T) {
	pending := []PendingRun{{Ref: "c1/a", Key: "a"}}
	nodes := []NodeStats{
		{Name: "w1", Alive: true, Capacity: 2, Granted: 3},
		{Name: "w2", Alive: true, Capacity: 2, Granted: 0},
	}
	if got := (RoundRobin{}).Pick(pending, nodes, "w1"); got != -1 {
		t.Fatalf("w1 granted ahead of under-granted w2: pick %d", got)
	}
	if got := (RoundRobin{}).Pick(pending, nodes, "w2"); got != 0 {
		t.Fatalf("under-granted w2 deferred: pick %d", got)
	}
	// A dead or saturated peer does not hold the grant hostage.
	nodes[1].Alive = false
	if got := (RoundRobin{}).Pick(pending, nodes, "w1"); got != 0 {
		t.Fatalf("w1 deferred to a dead node: pick %d", got)
	}
}

func TestLeastLoadedGrantsTheLightestNode(t *testing.T) {
	pending := []PendingRun{{Ref: "c1/a", Key: "a"}}
	nodes := []NodeStats{
		{Name: "w1", Alive: true, Capacity: 4, Inflight: 3},
		{Name: "w2", Alive: true, Capacity: 4, Inflight: 1},
	}
	if got := (LeastLoaded{}).Pick(pending, nodes, "w1"); got != -1 {
		t.Fatalf("heavier node granted: pick %d", got)
	}
	if got := (LeastLoaded{}).Pick(pending, nodes, "w2"); got != 0 {
		t.Fatalf("lightest node deferred: pick %d", got)
	}
}

func TestConfigAffinityRoutesGroupsToTheirOwners(t *testing.T) {
	pending := []PendingRun{
		{Ref: "c1/a", Key: "a", Group: "g1"},
		{Ref: "c1/b", Key: "b", Group: "g2"},
	}
	nodes := []NodeStats{
		{Name: "w1", Alive: true, Capacity: 2, Groups: []string{"g2"}},
		{Name: "w2", Alive: true, Capacity: 2, Groups: []string{"g1"}},
	}
	if got := (ConfigAffinity{}).Pick(pending, nodes, "w1"); got != 1 {
		t.Fatalf("w1 should take its own group g2 (index 1), picked %d", got)
	}
	if got := (ConfigAffinity{}).Pick(pending, nodes, "w2"); got != 0 {
		t.Fatalf("w2 should take its own group g1 (index 0), picked %d", got)
	}
	// A node owning nothing claims the first unowned group, or falls back
	// to the head rather than idling.
	fresh := []NodeStats{{Name: "w3", Alive: true, Capacity: 2}}
	if got := (ConfigAffinity{}).Pick(pending, fresh, "w3"); got != 0 {
		t.Fatalf("unowned groups should go to the requester: pick %d", got)
	}
	owned := append(copyNodes(nodes), NodeStats{Name: "w3", Alive: true, Capacity: 2})
	if got := (ConfigAffinity{}).Pick(pending, owned, "w3"); got != 0 {
		t.Fatalf("affinity must not stall a capacious node: pick %d", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"", "round-robin", "least-loaded", "config-affinity"} {
		if _, err := PolicyByName(name); err != nil {
			t.Fatalf("policy %q: %v", name, err)
		}
	}
	if _, err := PolicyByName("coin-flip"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
