package cluster

import "fmt"

// PendingRun is the policy-facing projection of one queued run.
type PendingRun struct {
	Ref string
	Key string
	// Group is the run's seed-independent config fingerprint
	// (RunSpec.GroupKey) — the affinity signal.
	Group string
}

// NodeStats is the policy-facing projection of one registered node.
type NodeStats struct {
	Name     string
	Alive    bool
	Inflight int
	Capacity int
	// Granted counts every lease the node was ever granted; Executed and
	// Cached count its finished runs.
	Granted  int
	Executed int
	Cached   int
	// Groups lists, sorted, the config groups the node has already run —
	// what config-affinity routes on.
	Groups []string
}

// Policy decides which pending run (if any) a requesting node receives.
// Policies MUST be pure functions of their arguments: given the same
// (pending, nodes, node) they return the same index. The coordinator
// holds its lock across the call, so a policy must not call back into
// the coordinator or queue. Returning -1 defers the node — it receives
// nothing this round.
type Policy interface {
	Name() string
	Pick(pending []PendingRun, nodes []NodeStats, node string) int
}

// PolicyByName resolves a policy label from config/CLI flags.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "round-robin":
		return RoundRobin{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "config-affinity":
		return ConfigAffinity{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q", name)
}

// RoundRobin spreads grants evenly: a node is deferred while some other
// alive node with spare capacity has strictly fewer lifetime grants, so
// grant counts level out across the fleet.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (RoundRobin) Pick(pending []PendingRun, nodes []NodeStats, node string) int {
	if len(pending) == 0 {
		return -1
	}
	var self *NodeStats
	for i := range nodes {
		if nodes[i].Name == node {
			self = &nodes[i]
			break
		}
	}
	if self == nil {
		return -1
	}
	for _, n := range nodes {
		if n.Name != node && n.Alive && n.Inflight < n.Capacity && n.Granted < self.Granted {
			return -1 // let the under-granted node catch up
		}
	}
	return 0
}

// LeastLoaded grants the queue head to whichever requester currently has
// the fewest runs in flight; busier nodes are deferred until the lightest
// ones are topped up.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(pending []PendingRun, nodes []NodeStats, node string) int {
	if len(pending) == 0 {
		return -1
	}
	var self *NodeStats
	minInflight := -1
	for i := range nodes {
		n := &nodes[i]
		if n.Name == node {
			self = n
		}
		if n.Alive && n.Inflight < n.Capacity {
			if minInflight < 0 || n.Inflight < minInflight {
				minInflight = n.Inflight
			}
		}
	}
	if self == nil || self.Inflight > minInflight {
		return -1
	}
	return 0
}

// ConfigAffinity routes runs that share a config group (same strategy
// and config, different seed) to the node that already ran that group —
// the node most likely to benefit from warm state. Runs whose group no
// node owns yet fall through in queue order, so the policy never stalls
// a node that has capacity.
type ConfigAffinity struct{}

// Name implements Policy.
func (ConfigAffinity) Name() string { return "config-affinity" }

// Pick implements Policy.
func (ConfigAffinity) Pick(pending []PendingRun, nodes []NodeStats, node string) int {
	if len(pending) == 0 {
		return -1
	}
	owned := make(map[string]string) // group -> owning node
	for _, n := range nodes {
		if !n.Alive {
			continue
		}
		for _, g := range n.Groups {
			if _, taken := owned[g]; !taken || n.Name == node {
				owned[g] = n.Name
			}
		}
	}
	// First choice: a run whose group this node already owns.
	for i, p := range pending {
		if owned[p.Group] == node {
			return i
		}
	}
	// Second: a run nobody owns — claim the group for this node.
	for i, p := range pending {
		if _, taken := owned[p.Group]; !taken {
			return i
		}
	}
	// Everything pending belongs to other nodes' groups; take the head
	// rather than idle (affinity is a preference, not a partition).
	return 0
}
