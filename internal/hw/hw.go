// Package hw models the Hardware Units (HUs) of the paper's architecture
// (§4, Figure 2): the compute platforms — vehicular on-board units (OBUs),
// RSU boards, and server GPUs — that the ML module deploys training to.
//
// The paper's prototype executed real PyTorch training on a GTX 1080 Ti and
// fed the measured wall-clock back into simulated time. This package
// replaces measurement with a calibrated model: training duration is
// derived from the workload (FLOPs per example × samples × epochs) and a
// profile's effective throughput plus a fixed per-task overhead. The
// substitution makes simulated time deterministic and host-independent
// while preserving the semantics the evaluation depends on — training
// occupies an agent for a data-amount-dependent span of simulated time
// (roughly 8 s for the paper's 80-sample/2-epoch retrain).
//
// EffectiveGFLOPS is an *end-to-end* figure, not peak silicon throughput:
// for small per-round workloads, measured retrain time is dominated by
// framework startup, data loading, and transfer overheads (which is why the
// paper's prototype timed whole script executions). The default OBU profile
// is calibrated so the evaluation CNN's retrain lands in the paper's
// observed range; see DESIGN.md.
package hw

import (
	"fmt"

	"roadrunner/internal/sim"
)

// Profile describes one hardware class.
type Profile struct {
	// Name labels the profile in metrics and logs.
	Name string `json:"name"`
	// EffectiveGFLOPS is the end-to-end training throughput in GFLOP/s.
	EffectiveGFLOPS float64 `json:"effective_gflops"`
	// TaskOverheadS is the fixed per-training-task overhead in seconds
	// (data loading, framework startup, result writing).
	TaskOverheadS float64 `json:"task_overhead_s"`
	// Slots is the number of training operations the unit can run in
	// parallel without slowdown ("the HUs can run multiple operations in
	// parallel", §4). Vehicles have 1; the server HU more.
	Slots int `json:"slots"`
}

// OBUProfile is the default vehicular on-board unit — a GPU stand-in
// calibrated to the paper's observed per-round retrain times.
func OBUProfile() Profile {
	return Profile{Name: "obu-gpu", EffectiveGFLOPS: 0.01, TaskOverheadS: 3, Slots: 1}
}

// ServerProfile is the cloud-server hardware unit.
func ServerProfile() Profile {
	return Profile{Name: "server-gpu", EffectiveGFLOPS: 0.08, TaskOverheadS: 1, Slots: 8}
}

// RSUProfile is a road-side unit's embedded board.
func RSUProfile() Profile {
	return Profile{Name: "rsu-board", EffectiveGFLOPS: 0.005, TaskOverheadS: 3, Slots: 1}
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	switch {
	case p.EffectiveGFLOPS <= 0:
		return fmt.Errorf("hw: non-positive throughput %v GFLOPS", p.EffectiveGFLOPS)
	case p.TaskOverheadS < 0:
		return fmt.Errorf("hw: negative task overhead %v", p.TaskOverheadS)
	case p.Slots <= 0:
		return fmt.Errorf("hw: non-positive slot count %d", p.Slots)
	default:
		return nil
	}
}

// TrainSeconds returns the modelled duration of training `epochs` passes
// over `samples` examples of a model costing flopsPerExample per training
// step.
func (p Profile) TrainSeconds(flopsPerExample float64, samples, epochs int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if flopsPerExample <= 0 {
		return 0, fmt.Errorf("hw: non-positive flops per example %v", flopsPerExample)
	}
	if samples <= 0 || epochs <= 0 {
		return 0, fmt.Errorf("hw: non-positive workload (%d samples, %d epochs)", samples, epochs)
	}
	totalFLOPs := flopsPerExample * float64(samples) * float64(epochs)
	return p.TaskOverheadS + totalFLOPs/(p.EffectiveGFLOPS*1e9), nil
}

// EvalSeconds returns the modelled duration of evaluating the model on
// `samples` examples (forward passes only; callers pass forward FLOPs).
func (p Profile) EvalSeconds(forwardFLOPsPerExample float64, samples int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if forwardFLOPsPerExample <= 0 || samples <= 0 {
		return 0, fmt.Errorf("hw: non-positive evaluation workload")
	}
	return p.TaskOverheadS + forwardFLOPsPerExample*float64(samples)/(p.EffectiveGFLOPS*1e9), nil
}

// Unit is one agent's hardware unit: a profile plus usage accounting,
// feeding the "computational workloads of individual vehicles" custom
// metric (paper §3 requirement 4).
type Unit struct {
	profile Profile

	busySeconds float64
	tasksRun    int
}

// NewUnit returns a unit with the given profile.
func NewUnit(p Profile) (*Unit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Unit{profile: p}, nil
}

// Profile returns the unit's hardware class.
func (u *Unit) Profile() Profile { return u.profile }

// TrainDuration is Profile.TrainSeconds as a sim.Duration.
func (u *Unit) TrainDuration(flopsPerExample float64, samples, epochs int) (sim.Duration, error) {
	s, err := u.profile.TrainSeconds(flopsPerExample, samples, epochs)
	if err != nil {
		return 0, err
	}
	return sim.Duration(s), nil
}

// Record charges completed work to the unit's usage accounting.
func (u *Unit) Record(d sim.Duration) {
	if d > 0 {
		u.busySeconds += float64(d)
	}
	u.tasksRun++
}

// BusySeconds returns the total simulated seconds of compute charged.
func (u *Unit) BusySeconds() float64 { return u.busySeconds }

// TasksRun returns the number of completed tasks.
func (u *Unit) TasksRun() int { return u.tasksRun }
