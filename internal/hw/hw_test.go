package hw

import (
	"math"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	for _, p := range []Profile{OBUProfile(), ServerProfile(), RSUProfile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
	bad := []Profile{
		{EffectiveGFLOPS: 0, Slots: 1},
		{EffectiveGFLOPS: 1, TaskOverheadS: -1, Slots: 1},
		{EffectiveGFLOPS: 1, Slots: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestTrainSecondsFormula(t *testing.T) {
	p := Profile{Name: "x", EffectiveGFLOPS: 1, TaskOverheadS: 2, Slots: 1}
	// 1e6 flops/example * 100 samples * 2 epochs = 2e8 flops at 1e9 flop/s
	// = 0.2 s compute + 2 s overhead.
	got, err := p.TrainSeconds(1e6, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("TrainSeconds = %v, want 2.2", got)
	}
}

func TestTrainSecondsScalesWithData(t *testing.T) {
	p := OBUProfile()
	small, err := p.TrainSeconds(3e5, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := p.TrainSeconds(3e5, 160, 2)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Fatalf("training 160 samples (%v s) not slower than 40 (%v s)", large, small)
	}
}

func TestOBUCalibration(t *testing.T) {
	// The evaluation CNN costs ~3e5 training FLOPs per example; the
	// paper-style retrain (80 samples, 2 epochs) must land in single-digit
	// seconds so that a 30 s round covers transmission plus retraining.
	p := OBUProfile()
	got, err := p.TrainSeconds(3e5, 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got < 3 || got > 15 {
		t.Fatalf("OBU retrain estimate = %v s, want 3-15 s (calibration drifted)", got)
	}
}

func TestTrainSecondsValidation(t *testing.T) {
	p := OBUProfile()
	if _, err := p.TrainSeconds(0, 10, 1); err == nil {
		t.Fatal("zero flops accepted")
	}
	if _, err := p.TrainSeconds(1e6, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := p.TrainSeconds(1e6, 10, 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
	var bad Profile
	if _, err := bad.TrainSeconds(1e6, 10, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestEvalSeconds(t *testing.T) {
	p := Profile{Name: "x", EffectiveGFLOPS: 1, TaskOverheadS: 0.5, Slots: 1}
	got, err := p.EvalSeconds(1e6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("EvalSeconds = %v, want 1.5", got)
	}
	if _, err := p.EvalSeconds(0, 10); err == nil {
		t.Fatal("zero flops accepted")
	}
}

func TestUnitAccounting(t *testing.T) {
	u, err := NewUnit(OBUProfile())
	if err != nil {
		t.Fatal(err)
	}
	if u.Profile().Name != "obu-gpu" {
		t.Fatalf("Profile = %v", u.Profile().Name)
	}
	d, err := u.TrainDuration(3e5, 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("TrainDuration = %v", d)
	}
	u.Record(d)
	u.Record(d)
	if u.TasksRun() != 2 {
		t.Fatalf("TasksRun = %d", u.TasksRun())
	}
	if math.Abs(u.BusySeconds()-2*float64(d)) > 1e-9 {
		t.Fatalf("BusySeconds = %v, want %v", u.BusySeconds(), 2*float64(d))
	}
	u.Record(-5)
	if u.TasksRun() != 3 {
		t.Fatalf("TasksRun = %d after negative record", u.TasksRun())
	}
	if u.BusySeconds() != 2*float64(d) {
		t.Fatal("negative duration charged")
	}
}

func TestNewUnitRejectsInvalid(t *testing.T) {
	if _, err := NewUnit(Profile{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
