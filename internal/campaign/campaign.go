package campaign

import (
	"fmt"
	"sort"
	"sync"
)

// RunState is a run's position in the campaign lifecycle.
type RunState string

const (
	// RunQueued: waiting for a worker.
	RunQueued RunState = "queued"
	// RunRunning: a worker picked the run up (it may still be served from
	// the store — cache lookup happens inside the worker).
	RunRunning RunState = "running"
	// RunCached: served from the store without executing a single tick.
	RunCached RunState = "cached"
	// RunDone: freshly executed (and persisted, when a store is attached).
	RunDone RunState = "done"
	// RunFailed: every attempt failed.
	RunFailed RunState = "failed"
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == RunCached || s == RunDone || s == RunFailed
}

// RunStatus is the externally visible state of one run of a campaign.
type RunStatus struct {
	Name     string   `json:"name"`
	Key      string   `json:"key"`
	State    RunState `json:"state"`
	Attempts int      `json:"attempts,omitempty"`
	// FinalAccuracy and EndS are filled on completion.
	FinalAccuracy float64 `json:"final_accuracy,omitempty"`
	EndS          float64 `json:"end_s,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Status is a consistent snapshot of a whole campaign.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Done  bool   `json:"done"`
	Total int    `json:"total"`
	// Per-state tallies; Queued+Running+Cached+Completed+Failed == Total.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Cached    int `json:"cached"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Runs lists every run in deterministic expansion order.
	Runs []RunStatus `json:"runs"`
}

// Event is one progress notification on a campaign's subscription stream
// (served over SSE by cmd/roadrunnerd). Type "run" carries the updated
// run; type "campaign" carries the final status snapshot.
type Event struct {
	Type     string     `json:"type"`
	Campaign string     `json:"campaign"`
	Run      *RunStatus `json:"run,omitempty"`
	Status   *Status    `json:"status,omitempty"`
}

// Campaign is one submitted manifest in flight (or finished): its expanded
// specs, per-run status, and a broadcast channel of progress events. All
// methods are safe for concurrent use.
type Campaign struct {
	id       string
	manifest Manifest
	specs    []RunSpec

	mu      sync.Mutex
	runs    []RunStatus
	done    bool
	doneCh  chan struct{}
	subs    map[int]*subscriber
	nextSub int
}

// subscriber is one progress listener. Broadcasts never block the
// scheduler, so a stalled listener can drop intermediate events; lossy
// records that a drop happened, and the next broadcast with buffer space
// re-synchronizes the listener with a full status snapshot before any
// further incremental events.
type subscriber struct {
	ch    chan Event
	lossy bool
}

// subscriberBuffer is each listener's channel capacity. It only needs to
// absorb short bursts: a listener that stalls past it is healed by the
// snapshot-resync path, and the terminal event is delivered
// unconditionally, so correctness never depends on the buffer size.
const subscriberBuffer = 32

// NewCampaign validates and expands the manifest and derives every run's
// content address up front, so a submission error surfaces before any
// execution starts.
func NewCampaign(id string, m Manifest) (*Campaign, error) {
	if id == "" {
		return nil, fmt.Errorf("campaign: empty campaign id")
	}
	specs, err := m.Expand()
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		id:       id,
		manifest: m,
		specs:    specs,
		runs:     make([]RunStatus, len(specs)),
		doneCh:   make(chan struct{}),
		subs:     make(map[int]*subscriber),
	}
	for i, spec := range specs {
		key, err := spec.Key()
		if err != nil {
			return nil, err
		}
		c.runs[i] = RunStatus{Name: spec.Name, Key: key, State: RunQueued}
	}
	return c, nil
}

// ID returns the campaign's identifier.
func (c *Campaign) ID() string { return c.id }

// Manifest returns the submitted manifest.
func (c *Campaign) Manifest() Manifest { return c.manifest }

// Specs returns the expanded run specs in campaign order. The slice is
// shared; callers must not mutate it.
func (c *Campaign) Specs() []RunSpec { return c.specs }

// Keys returns every run's content address in campaign order.
func (c *Campaign) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, len(c.runs))
	for i, r := range c.runs {
		keys[i] = r.Key
	}
	return keys
}

// Done returns a channel closed when every run reached a terminal state.
func (c *Campaign) Done() <-chan struct{} { return c.doneCh }

// Status returns a consistent snapshot of the campaign.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

func (c *Campaign) statusLocked() Status {
	st := Status{
		ID:    c.id,
		Name:  c.manifest.Name,
		Done:  c.done,
		Total: len(c.runs),
		Runs:  append([]RunStatus(nil), c.runs...),
	}
	for _, r := range c.runs {
		switch r.State {
		case RunQueued:
			st.Queued++
		case RunRunning:
			st.Running++
		case RunCached:
			st.Cached++
		case RunDone:
			st.Completed++
		case RunFailed:
			st.Failed++
		}
	}
	return st
}

// Subscribe registers a progress listener. The returned channel receives
// subsequent events, buffered so broadcasts never block the scheduler. A
// listener that stalls long enough to overflow the buffer loses
// intermediate events, but never silently: once it drains, the next event
// it receives is a full "campaign" status snapshot covering everything it
// missed (including resume-driven state transitions), and the terminal
// event is always delivered. The channel is closed by cancel or when the
// campaign finishes after its final event.
func (c *Campaign) Subscribe() (<-chan Event, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan Event, subscriberBuffer)
	if c.done {
		// Late subscribers still observe the terminal event.
		ch <- Event{Type: "campaign", Campaign: c.id, Status: ptr(c.statusLocked())}
		close(ch)
		return ch, func() {}
	}
	id := c.nextSub
	c.nextSub++
	c.subs[id] = &subscriber{ch: ch}
	cancel := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if sub, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(sub.ch)
		}
	}
	return ch, cancel
}

func ptr[T any](v T) *T { return &v }

// broadcastLocked fans an event out to all subscribers without blocking,
// in subscription order. A subscriber that previously dropped an event is
// sent a status snapshot first, so incremental events downstream of a gap
// are never interpreted against stale state.
func (c *Campaign) broadcastLocked(ev Event) {
	for _, id := range c.subIDsLocked() {
		sub := c.subs[id]
		if sub.lossy {
			select {
			case sub.ch <- Event{Type: "campaign", Campaign: c.id, Status: ptr(c.statusLocked())}:
				sub.lossy = false
			default:
				// Still stalled; stay lossy and keep the gap open.
			}
		}
		select {
		case sub.ch <- ev:
		default:
			sub.lossy = true
		}
	}
}

// deliverLocked sends the terminal event unconditionally: if the
// subscriber's buffer is full, buffered intermediate events are evicted
// oldest-first until the event fits. The terminal snapshot supersedes
// everything it displaces, and broadcasts only happen under c.mu, so the
// eviction loop cannot race another sender.
func (c *Campaign) deliverLocked(sub *subscriber, ev Event) {
	for {
		select {
		case sub.ch <- ev:
			return
		default:
		}
		select {
		case <-sub.ch:
		default:
		}
	}
}

func (c *Campaign) subIDsLocked() []int {
	ids := make([]int, 0, len(c.subs))
	for id := range c.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// update applies a scheduler notification to run i and broadcasts it.
func (c *Campaign) update(i int, ev runEvent, tr *TaskResult) RunStatus {
	var state RunState
	switch ev {
	case runStarted:
		state = RunRunning
	case runCached:
		state = RunCached
	case runDone:
		state = RunDone
	case runFailed:
		state = RunFailed
	}
	var upd *RunUpdate
	if tr != nil {
		upd = &RunUpdate{Attempts: tr.Attempts}
		if tr.Result != nil {
			upd.FinalAccuracy = tr.Result.FinalAccuracy
			upd.EndS = float64(tr.Result.End)
		}
		if tr.Err != nil {
			upd.Error = tr.Err.Error()
		}
	}
	return c.Transition(i, state, upd)
}

// RunUpdate carries the completion detail an external driver attaches to
// a run transition.
type RunUpdate struct {
	Attempts      int
	FinalAccuracy float64
	EndS          float64
	Error         string
}

// Transition applies an externally driven lifecycle change to run i and
// broadcasts it — the hook the cluster coordinator drives remote
// executions through (the in-process scheduler goes through the same
// path). upd may be nil for a bare state change (started, re-queued
// after a lease expiry).
func (c *Campaign) Transition(i int, state RunState, upd *RunUpdate) RunStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	run := &c.runs[i]
	run.State = state
	if upd != nil {
		run.Attempts = upd.Attempts
		run.FinalAccuracy = upd.FinalAccuracy
		run.EndS = upd.EndS
		run.Error = upd.Error
	}
	snapshot := *run
	c.broadcastLocked(Event{Type: "run", Campaign: c.id, Run: ptr(snapshot)})
	return snapshot
}

// Finish marks the campaign done, emits the terminal event, and closes
// every subscription. It is idempotent; external drivers call it once
// the last run reaches a terminal state.
func (c *Campaign) Finish() { c.finish() }

// finish marks the campaign done, emits the terminal event, and closes
// every subscription.
func (c *Campaign) finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return
	}
	c.done = true
	terminal := Event{Type: "campaign", Campaign: c.id, Status: ptr(c.statusLocked())}
	for _, id := range c.subIDsLocked() {
		sub := c.subs[id]
		// The terminal event is delivered even to stalled subscribers — a
		// dropped intermediate event must never cost a client the final
		// campaign snapshot.
		c.deliverLocked(sub, terminal)
		close(sub.ch)
		delete(c.subs, id)
	}
	close(c.doneCh)
}

// RunCampaign executes every run of the campaign on the scheduler's pool,
// journaling progress when a store is attached (the journal is what makes
// a killed campaign resumable) and driving the campaign's status and event
// stream. It blocks until the campaign is done and returns outcomes in
// campaign order.
func (s *Scheduler) RunCampaign(c *Campaign) ([]TaskResult, error) {
	tasks := make([]Task, len(c.specs))
	for i, spec := range c.specs {
		t, err := TaskForSpec(spec)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	var j *Journal
	if s.store != nil {
		var err error
		j, err = openJournal(s.store.journalPath(c.id), c)
		if err != nil {
			return nil, err
		}
		defer j.Close()
	}
	results := s.execute(tasks, func(idx int, ev runEvent, tr *TaskResult) {
		snapshot := c.update(idx, ev, tr)
		if j != nil && snapshot.State.Terminal() {
			j.RecordRun(snapshot)
		}
	})
	c.finish()
	return results, nil
}
