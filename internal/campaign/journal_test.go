package campaign

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCampaignCrashResumeByteIdentical is the resume-protocol contract test:
// a campaign killed mid-flight (injected store crash after the first run
// persisted) resumes from its journal, serves the completed run from the
// store without executing it, finishes the rest, and ends with final
// canonical bytes identical to an uninterrupted campaign's.
func TestCampaignCrashResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	const id = "c0001-crashtest"
	m := tinyManifest()

	// Phase 1: run the campaign into an injected crash. The first run's put
	// succeeds; the second run's put fails, as if the process died there.
	storeA, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeA.FailAfterPuts(1)
	schedA := instantScheduler(t, Options{Workers: 1, MaxAttempts: 1, Store: storeA})
	cA, err := NewCampaign(id, m)
	if err != nil {
		t.Fatal(err)
	}
	resultsA, err := schedA.RunCampaign(cA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resultsA) != 2 {
		t.Fatalf("expanded %d runs, want 2", len(resultsA))
	}
	if resultsA[0].Err != nil {
		t.Fatalf("pre-crash run failed: %v", resultsA[0].Err)
	}
	if !errors.Is(resultsA[1].Err, ErrInjectedCrash) {
		t.Fatalf("post-crash run err = %v, want ErrInjectedCrash", resultsA[1].Err)
	}
	st := cA.Status()
	if st.Completed != 1 || st.Failed != 1 {
		t.Fatalf("interrupted campaign status: %+v", st)
	}

	// Phase 2: resume with a fresh store handle (the "restarted process").
	storeB, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	schedB := instantScheduler(t, Options{Workers: 1, Store: storeB})
	cB, resultsB, err := schedB.ResumeCampaign(id)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range resultsB {
		if tr.Err != nil {
			t.Fatalf("resumed run %d failed: %v", i, tr.Err)
		}
	}
	if !resultsB[0].Cached || resultsB[1].Cached {
		t.Fatalf("resume should cache-hit exactly the pre-crash run: %+v %+v", resultsB[0], resultsB[1])
	}
	if bs := schedB.Stats(); bs.Executed != 1 || bs.Cached != 1 {
		t.Fatalf("resume re-executed completed work: %+v", bs)
	}
	if st := cB.Status(); !st.Done || st.Cached != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("resumed campaign status: %+v", st)
	}

	// Phase 3: an uninterrupted control campaign in a separate store.
	storeC, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	schedC := instantScheduler(t, Options{Workers: 1, Store: storeC})
	cC, err := NewCampaign("c0002-control", m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schedC.RunCampaign(cC); err != nil {
		t.Fatal(err)
	}

	keys := cB.Keys()
	control := cC.Keys()
	if len(keys) != len(control) {
		t.Fatalf("key counts differ: %d vs %d", len(keys), len(control))
	}
	for i, key := range keys {
		if key != control[i] {
			t.Fatalf("run %d keys diverge: %s vs %s", i, key, control[i])
		}
		resumed, err := storeB.CanonicalBytes(key)
		if err != nil {
			t.Fatalf("resumed store missing %s: %v", key, err)
		}
		uninterrupted, err := storeC.CanonicalBytes(key)
		if err != nil {
			t.Fatalf("control store missing %s: %v", key, err)
		}
		if !bytes.Equal(resumed, uninterrupted) {
			t.Fatalf("run %d: resumed bytes differ from the uninterrupted campaign", i)
		}
	}
}

func TestReadJournalToleratesTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := store.journalPath("c0009-torn")
	lines := `{"type":"manifest","id":"c0009-torn","manifest":{"name":"smoke","env":"tiny","rounds":2,"strategies":[{"kind":"fedavg"}],"seeds":[1]}}
{"type":"run","run":{"name":"fedavg/s1/fault-free/default","key":"` + "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef" + `","state":"done"}}
{"type":"run","run":{"name":"torn`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	m, runs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	if m.Name != "smoke" || len(m.Strategies) != 1 {
		t.Fatalf("manifest mis-read: %+v", m)
	}
	if len(runs) != 1 {
		t.Fatalf("read %d runs, want 1 (torn record dropped)", len(runs))
	}
}

func TestReadJournalRequiresManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadJournal(path); err == nil {
		t.Fatal("journal without manifest accepted")
	}
	if _, _, err := ReadJournal(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing journal accepted")
	}
}

func TestResumeRequiresStore(t *testing.T) {
	s := instantScheduler(t, Options{Workers: 1})
	if _, _, err := s.ResumeCampaign("c0001-anything"); err == nil {
		t.Fatal("resume without a store accepted")
	}
}
