// Package campaign is Roadrunner's experiment-orchestration layer: it
// promotes the simulator from a per-process CLI into a service substrate,
// the move cloud-hosted V&V frameworks for vehicular systems make when
// single-shot simulation becomes the iteration bottleneck (cf. Samak et
// al. and DRIVE's batched-scenario oracle in PAPERS.md), and the paper's
// own stated future work — "increasing the parallelism of the simulation
// to speed up learning strategy development iterations".
//
// A Campaign starts as a declarative Manifest: the cross-product of
// learning strategies × seeds × fault scenarios × configuration overrides,
// expanded into individual RunSpecs. Because a (config, seed, faults.Plan)
// triple fully determines a run byte-for-byte (the reproducibility
// contract of internal/core, extended to faults by internal/faults), every
// RunSpec is content-addressable: its Key is a hash of the canonical spec
// encoding, and a durable Store maps keys to canonical results. The
// Scheduler executes specs on a worker pool with per-run panic isolation
// and retry-with-backoff, skipping execution entirely on store hits; a
// campaign journal makes a killed campaign resumable to byte-identical
// final output. cmd/roadrunnerd serves all of this over HTTP.
package campaign

import (
	"fmt"

	"roadrunner/internal/core"
	"roadrunner/internal/faults"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
)

// ScenarioFaultFree names the empty fault plan in manifest scenario lists.
const ScenarioFaultFree = "fault-free"

// DefaultScenarioSpan is the reference duration fault-scenario windows are
// scaled to when a manifest does not set one, matching the conformance
// harness's choice: long enough to land inside the learning process at
// laptop scale, short enough that windows overlap actual traffic.
const DefaultScenarioSpan sim.Duration = 600

// Environment presets a manifest can base its runs on.
const (
	// EnvDefault is the paper's §5.2 Gothenburg-scale environment.
	EnvDefault = "default"
	// EnvSmall is the laptop-scale environment of core.SmallConfig.
	EnvSmall = "small"
	// EnvTiny is a conformance-scale environment (16 vehicles, short
	// horizon, 2 RSUs) for smoke tests and CI campaigns.
	EnvTiny = "tiny"
)

// StrategySpec selects a learning strategy declaratively, so it can travel
// in manifests over HTTP and participate in run-key hashes. Kind names
// match cmd/sweep: fedavg (alias base), opp (alias opportunistic), gossip,
// centralized, hybrid, rsu (alias rsu-assisted). Rounds parameterizes the
// round-based strategies; duration-based ones (gossip, hybrid) ignore it.
type StrategySpec struct {
	Kind   string `json:"kind"`
	Rounds int    `json:"rounds,omitempty"`
}

// Validate reports whether the spec names a known strategy.
func (s StrategySpec) Validate() error {
	if _, err := s.Build(); err != nil {
		return err
	}
	return nil
}

// Build constructs a fresh strategy instance. Strategies are stateful, so
// every run needs its own instance; a spec is the factory.
func (s StrategySpec) Build() (strategy.Strategy, error) {
	rounds := s.Rounds
	if rounds < 0 {
		return nil, fmt.Errorf("campaign: strategy %q: negative rounds %d", s.Kind, rounds)
	}
	if rounds == 0 {
		rounds = 10
	}
	switch s.Kind {
	case "fedavg", "base":
		c := strategy.DefaultFedAvgConfig()
		c.Rounds = rounds
		return strategy.NewFederatedAveraging(c)
	case "opp", "opportunistic":
		c := strategy.DefaultOppConfig()
		c.Rounds = rounds
		return strategy.NewOpportunistic(c)
	case "gossip":
		return strategy.NewGossip(strategy.DefaultGossipConfig())
	case "centralized":
		c := strategy.DefaultCentralizedConfig()
		c.Rounds = rounds
		return strategy.NewCentralized(c)
	case "hybrid":
		return strategy.NewHybrid(strategy.DefaultHybridConfig())
	case "rsu", "rsu-assisted":
		c := strategy.DefaultRSUAssistedConfig()
		c.Rounds = rounds
		return strategy.NewRSUAssisted(c)
	default:
		return nil, fmt.Errorf("campaign: unknown strategy kind %q", s.Kind)
	}
}

// Override is one named point of a configuration sweep: the fields set
// here replace the environment preset's values. Pointers distinguish "not
// swept" from "set to the zero value".
type Override struct {
	Name              string   `json:"name"`
	Vehicles          *int     `json:"vehicles,omitempty"`
	RSUCount          *int     `json:"rsu_count,omitempty"`
	V2XRangeM         *float64 `json:"v2x_range_m,omitempty"`
	OffWhenParkedProb *float64 `json:"off_when_parked_prob,omitempty"`
	TickIntervalS     *float64 `json:"tick_interval_s,omitempty"`
	HorizonS          *float64 `json:"horizon_s,omitempty"`
	TestSamples       *int     `json:"test_samples,omitempty"`
}

func (o Override) apply(cfg *core.Config) {
	if o.Vehicles != nil {
		cfg.Fleet.Vehicles = *o.Vehicles
	}
	if o.RSUCount != nil {
		cfg.RSUCount = *o.RSUCount
	}
	if o.V2XRangeM != nil {
		cfg.Comm.V2X.RangeM = *o.V2XRangeM
	}
	if o.OffWhenParkedProb != nil {
		cfg.Fleet.OffWhenParkedProb = *o.OffWhenParkedProb
	}
	if o.TickIntervalS != nil {
		cfg.TickInterval = sim.Duration(*o.TickIntervalS)
	}
	if o.HorizonS != nil {
		cfg.Horizon = sim.Duration(*o.HorizonS)
	}
	if o.TestSamples != nil {
		cfg.TestSamples = *o.TestSamples
	}
}

// Manifest declares a campaign: every combination of Strategies × Seeds ×
// Scenarios × Overrides becomes one run. The zero values keep manifests
// small: Env defaults to the paper-scale environment, Scenarios to the
// fault-free run, Overrides to the preset as-is.
type Manifest struct {
	// Name labels the campaign in journals, logs, and the API.
	Name string `json:"name"`
	// Env picks the base environment preset: default, small, or tiny.
	Env string `json:"env,omitempty"`
	// Rounds is the default round count for round-based strategies whose
	// spec leaves Rounds unset.
	Rounds int `json:"rounds,omitempty"`
	// Strategies lists the learning strategies to run.
	Strategies []StrategySpec `json:"strategies"`
	// Seeds lists the experiment seeds; every strategy runs every seed.
	Seeds []uint64 `json:"seeds"`
	// Scenarios names fault scenarios from internal/faults ("fault-free"
	// plus the named grid). Empty means fault-free only.
	Scenarios []string `json:"scenarios,omitempty"`
	// ScenarioSpanS scales scenario fault windows to a run duration in
	// simulated seconds (0 = DefaultScenarioSpan).
	ScenarioSpanS float64 `json:"scenario_span_s,omitempty"`
	// Overrides lists configuration sweep points. Empty means one run per
	// (strategy, seed, scenario) on the unmodified preset.
	Overrides []Override `json:"overrides,omitempty"`
	// EvalWorkers enables shard-deterministic parallel test-set evaluation
	// for every run. It changes throughput, not results, and is excluded
	// from run keys.
	EvalWorkers int `json:"eval_workers,omitempty"`
}

// baseConfig resolves the environment preset.
func (m Manifest) baseConfig() (core.Config, error) {
	switch m.Env {
	case "", EnvDefault:
		return core.DefaultConfig(), nil
	case EnvSmall:
		return core.SmallConfig(), nil
	case EnvTiny:
		return TinyConfig(), nil
	default:
		return core.Config{}, fmt.Errorf("campaign: unknown env %q", m.Env)
	}
}

// TinyConfig is the conformance-scale environment preset: a compact fleet
// on a short horizon with two RSUs, sized so a full strategy run completes
// in fractions of a host second. CI smoke campaigns and the e2e tests use
// it via EnvTiny.
func TinyConfig() core.Config {
	cfg := core.SmallConfig()
	cfg.RSUCount = 2
	cfg.Fleet.Vehicles = 16
	cfg.Fleet.Horizon = 1800
	cfg.Partition.PerAgent = 24
	cfg.TestSamples = 120
	return cfg
}

// Validate reports whether the manifest can be expanded.
func (m Manifest) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("campaign: manifest needs a name")
	}
	if len(m.Strategies) == 0 {
		return fmt.Errorf("campaign: manifest %q lists no strategies", m.Name)
	}
	if len(m.Seeds) == 0 {
		return fmt.Errorf("campaign: manifest %q lists no seeds", m.Name)
	}
	if m.Rounds < 0 {
		return fmt.Errorf("campaign: manifest %q: negative rounds %d", m.Name, m.Rounds)
	}
	if m.ScenarioSpanS < 0 {
		return fmt.Errorf("campaign: manifest %q: negative scenario span %v", m.Name, m.ScenarioSpanS)
	}
	if m.EvalWorkers < 0 {
		return fmt.Errorf("campaign: manifest %q: negative eval workers %d", m.Name, m.EvalWorkers)
	}
	if _, err := m.baseConfig(); err != nil {
		return err
	}
	for _, s := range m.Strategies {
		spec := s
		if spec.Rounds == 0 {
			spec.Rounds = m.Rounds
		}
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	for _, sc := range m.scenarios() {
		if sc == ScenarioFaultFree {
			continue
		}
		if _, err := faults.ScenarioPlan(sc, m.scenarioSpan()); err != nil {
			return err
		}
	}
	for i, o := range m.Overrides {
		if o.Name == "" {
			return fmt.Errorf("campaign: manifest %q: override %d needs a name", m.Name, i)
		}
	}
	return nil
}

func (m Manifest) scenarios() []string {
	if len(m.Scenarios) == 0 {
		return []string{ScenarioFaultFree}
	}
	return m.Scenarios
}

func (m Manifest) scenarioSpan() sim.Duration {
	if m.ScenarioSpanS <= 0 {
		return DefaultScenarioSpan
	}
	return sim.Duration(m.ScenarioSpanS)
}

// Expand materializes the manifest's cross-product into run specs, in the
// deterministic order strategy → seed → scenario → override. Expansion is
// pure: expanding the same manifest twice yields identical specs and
// therefore identical run keys.
func (m Manifest) Expand() ([]RunSpec, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	base, err := m.baseConfig()
	if err != nil {
		return nil, err
	}
	overrides := m.Overrides
	if len(overrides) == 0 {
		overrides = []Override{{Name: "base"}}
	}
	var specs []RunSpec
	for _, strat := range m.Strategies {
		spec := strat
		if spec.Rounds == 0 {
			spec.Rounds = m.Rounds
		}
		for _, seed := range m.Seeds {
			for _, sc := range m.scenarios() {
				for _, o := range overrides {
					cfg := base
					o.apply(&cfg)
					cfg.Seed = seed
					cfg.EvalWorkers = m.EvalWorkers
					if sc != ScenarioFaultFree {
						plan, err := faults.ScenarioPlan(sc, m.scenarioSpan())
						if err != nil {
							return nil, err
						}
						cfg.Faults = &plan
					}
					specs = append(specs, RunSpec{
						Name:     fmt.Sprintf("%s/s%d/%s/%s", spec.Kind, seed, sc, o.Name),
						Strategy: spec,
						Config:   cfg,
					})
				}
			}
		}
	}
	return specs, nil
}
