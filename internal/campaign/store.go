package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"roadrunner/internal/comm"
	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
)

// ErrInjectedCrash is returned by Put once a test-configured crash point
// trips, simulating a campaign process dying mid-flight with some results
// persisted and others not.
var ErrInjectedCrash = errors.New("campaign: injected store crash point")

// RunMeta is the sidecar record stored next to a run's canonical bytes:
// everything needed to rehydrate a core.Result plus the checksum that
// guards against corruption.
type RunMeta struct {
	// Name is the label of the first run that produced this entry.
	Name string `json:"name"`
	// Key is the run's content address, repeated for self-description.
	Key string `json:"key"`
	// SHA256 is the hex digest of result.canonical; entries whose stored
	// bytes no longer match are detected on Get and re-executed.
	SHA256 string `json:"sha256"`
	// EndS, EventsProcessed, and FinalAccuracy mirror core.Result.
	EndS            float64 `json:"end_s"`
	EventsProcessed uint64  `json:"events_processed"`
	FinalAccuracy   float64 `json:"final_accuracy"`
	// WallNS is the host duration of the original execution — informational
	// only, never part of canonical bytes.
	WallNS int64 `json:"wall_ns"`
	// Comm holds the per-channel volume statistics.
	Comm map[string]comm.Stats `json:"comm"`
}

// Store is the content-addressed, durable result cache: one directory per
// run key under root, holding the run's canonical result bytes
// (result.canonical), its full metric recorder (metrics.json), the spec
// that produced it (spec.json), and the RunMeta sidecar (meta.json).
// Writes stage into a tmp directory and publish with a single rename, so a
// crash mid-write never leaves a half-entry at a live key. Reads verify
// the canonical bytes against the stored checksum AND against a re-encoding
// of the rehydrated result, so a hit is guaranteed to serve exactly the
// bytes a fresh execution would produce.
type Store struct {
	root string
	// stagePrefix namespaces this handle's staging paths. The store
	// directory is a shared tier: cluster worker processes (and multiple
	// handles within one process) publish into the same root, so staging
	// names must be unique across writers — two handles whose per-handle
	// seq counters collide would otherwise interleave writes into one
	// staging directory and publish a torn entry. pid separates
	// processes; the handle nonce separates handles within a process.
	stagePrefix string

	mu            sync.Mutex
	puts          int
	failAfterPuts int // test hook: Put fails once more than this many puts succeeded (0 = disabled)
	corruptions   int
	seq           int
}

// storeHandles numbers Store handles within this process.
var storeHandles atomic.Uint64

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: empty store dir")
	}
	for _, sub := range []string{"", "tmp", "campaigns", "cluster"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("campaign: open store: %w", err)
		}
	}
	return &Store{
		root:        dir,
		stagePrefix: fmt.Sprintf("p%d.h%d", os.Getpid(), storeHandles.Add(1)),
	}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// FailAfterPuts arms the injected crash point: after n successful Puts,
// every further Put fails with ErrInjectedCrash. Tests use this to
// simulate a campaign killed mid-flight; n = 0 disarms.
func (s *Store) FailAfterPuts(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAfterPuts = n
	s.puts = 0
}

// Corruptions reports how many store entries failed their integrity check
// and were evicted for re-execution.
func (s *Store) Corruptions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corruptions
}

func (s *Store) entryDir(key string) string { return filepath.Join(s.root, key) }

// validKeyName guards against path-escaping keys reaching the filesystem;
// real keys are 64 hex characters.
func validKeyName(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Has reports whether a published entry exists for key (without verifying
// its integrity — Get does that).
func (s *Store) Has(key string) bool {
	if !validKeyName(key) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.entryDir(key), "meta.json"))
	return err == nil
}

// Put persists a finished run under its key. Publishing is atomic (stage
// then rename); a concurrent or earlier writer winning the rename is fine,
// since content addressing makes all writers' bytes identical.
func (s *Store) Put(key string, spec RunSpec, res *core.Result) error {
	if !validKeyName(key) {
		return fmt.Errorf("campaign: store put: malformed key %q", key)
	}
	s.mu.Lock()
	s.puts++
	if s.failAfterPuts > 0 && s.puts > s.failAfterPuts {
		s.mu.Unlock()
		return ErrInjectedCrash
	}
	s.seq++
	stage := filepath.Join(s.root, "tmp", fmt.Sprintf("%s.%s.%d", key, s.stagePrefix, s.seq))
	s.mu.Unlock()

	canonical, err := res.CanonicalBytes()
	if err != nil {
		return fmt.Errorf("campaign: store put %s: %w", key, err)
	}
	sum := sha256.Sum256(canonical)
	meta := RunMeta{
		Name:            spec.Name,
		Key:             key,
		SHA256:          hex.EncodeToString(sum[:]),
		EndS:            float64(res.End),
		EventsProcessed: res.EventsProcessed,
		FinalAccuracy:   res.FinalAccuracy,
		WallNS:          res.Wall.Nanoseconds(),
		Comm:            res.Comm,
	}
	metaJSON, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: store put %s: %w", key, err)
	}
	specJSON, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: store put %s: %w", key, err)
	}
	var metricsBuf bytes.Buffer
	if res.Metrics != nil {
		if err := res.Metrics.WriteJSON(&metricsBuf); err != nil {
			return fmt.Errorf("campaign: store put %s: %w", key, err)
		}
	}

	if err := os.MkdirAll(stage, 0o755); err != nil {
		return fmt.Errorf("campaign: store put %s: %w", key, err)
	}
	defer func() { _ = os.RemoveAll(stage) }()
	files := []struct {
		name string
		data []byte
	}{
		{"result.canonical", canonical},
		{"metrics.json", metricsBuf.Bytes()},
		{"spec.json", specJSON},
		{"meta.json", metaJSON},
	}
	for _, f := range files {
		if err := writeFileSync(filepath.Join(stage, f.name), f.data); err != nil {
			return fmt.Errorf("campaign: store put %s: %w", key, err)
		}
	}
	final := s.entryDir(key)
	if err := os.Rename(stage, final); err != nil {
		if s.Has(key) {
			// Another writer published the identical content first.
			return nil
		}
		return fmt.Errorf("campaign: store put %s: %w", key, err)
	}
	return nil
}

// writeFileSync writes data and fsyncs it, so a published entry's contents
// are on disk before the rename that makes them visible.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// CanonicalBytes returns the stored canonical result bytes for key after
// verifying them against the entry's checksum. It is the read path the
// HTTP API serves results from. A missing entry returns os.ErrNotExist; a
// corrupt one is evicted and also reported as os.ErrNotExist.
func (s *Store) CanonicalBytes(key string) ([]byte, error) {
	if !validKeyName(key) {
		return nil, os.ErrNotExist
	}
	dir := s.entryDir(key)
	meta, err := s.readMeta(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, os.ErrNotExist
		}
		s.evict(dir)
		return nil, os.ErrNotExist
	}
	canonical, err := os.ReadFile(filepath.Join(dir, "result.canonical"))
	if err != nil {
		s.evict(dir)
		return nil, os.ErrNotExist
	}
	sum := sha256.Sum256(canonical)
	if hex.EncodeToString(sum[:]) != meta.SHA256 {
		s.evict(dir)
		return nil, os.ErrNotExist
	}
	return canonical, nil
}

// Meta returns the entry's verified sidecar record.
func (s *Store) Meta(key string) (*RunMeta, error) {
	if _, err := s.CanonicalBytes(key); err != nil {
		return nil, err
	}
	return s.readMeta(s.entryDir(key))
}

// Spec returns the stored run spec of a verified entry — enough to
// re-execute the run, e.g. with tracing enabled, and land on the same
// canonical bytes.
func (s *Store) Spec(key string) (*RunSpec, error) {
	if _, err := s.CanonicalBytes(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.entryDir(key), "spec.json"))
	if err != nil {
		return nil, err
	}
	var spec RunSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("campaign: store spec: %w", err)
	}
	return &spec, nil
}

// traceFileName maps a trace export format to its sidecar file name.
func traceFileName(format string) (string, bool) {
	switch format {
	case "csv":
		return "trace.csv", true
	case "json":
		return "trace.json", true
	default:
		return "", false
	}
}

// TraceBytes returns the cached trace export ("csv" or "json") for key, or
// os.ErrNotExist if none has been generated yet. Trace sidecars are derived
// data: tracing is deterministic given the spec, so they are regenerated on
// demand and evicted together with the entry.
func (s *Store) TraceBytes(key, format string) ([]byte, error) {
	name, ok := traceFileName(format)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown trace format %q", format)
	}
	if !validKeyName(key) {
		return nil, os.ErrNotExist
	}
	return os.ReadFile(filepath.Join(s.entryDir(key), name))
}

// PutTraceBytes caches a trace export next to an already-published entry,
// staging and renaming so readers never observe a torn file.
func (s *Store) PutTraceBytes(key, format string, data []byte) error {
	name, ok := traceFileName(format)
	if !ok {
		return fmt.Errorf("campaign: unknown trace format %q", format)
	}
	if !s.Has(key) {
		return os.ErrNotExist
	}
	s.mu.Lock()
	s.seq++
	stage := filepath.Join(s.root, "tmp", fmt.Sprintf("%s.%s.%s.%d", key, name, s.stagePrefix, s.seq))
	s.mu.Unlock()
	if err := writeFileSync(stage, data); err != nil {
		return fmt.Errorf("campaign: store trace %s: %w", key, err)
	}
	if err := os.Rename(stage, filepath.Join(s.entryDir(key), name)); err != nil {
		_ = os.Remove(stage)
		return fmt.Errorf("campaign: store trace %s: %w", key, err)
	}
	return nil
}

func (s *Store) readMeta(dir string) (*RunMeta, error) {
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta RunMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("campaign: store meta: %w", err)
	}
	return &meta, nil
}

// evict removes an entry that failed integrity checking, so the scheduler
// re-executes its run instead of serving damaged bytes.
func (s *Store) evict(dir string) {
	_ = os.RemoveAll(dir)
	s.mu.Lock()
	s.corruptions++
	s.mu.Unlock()
}

// Get returns the cached result for key, or (nil, nil) on a miss. A hit is
// doubly verified: the stored canonical bytes must match the entry's
// checksum, and the rehydrated result must re-encode to exactly those
// bytes — so a hit is indistinguishable, byte for byte, from re-running
// the spec. Any mismatch evicts the entry and reports a miss, which makes
// corruption self-healing: the scheduler re-executes and re-stores.
func (s *Store) Get(key string) (*core.Result, *RunMeta) {
	canonical, err := s.CanonicalBytes(key)
	if err != nil {
		return nil, nil
	}
	dir := s.entryDir(key)
	meta, err := s.readMeta(dir)
	if err != nil {
		s.evict(dir)
		return nil, nil
	}
	metricsData, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		s.evict(dir)
		return nil, nil
	}
	rec, err := metrics.ReadJSON(bytes.NewReader(metricsData))
	if err != nil {
		s.evict(dir)
		return nil, nil
	}
	res := &core.Result{
		Metrics:         rec,
		Comm:            meta.Comm,
		End:             sim.Time(meta.EndS),
		Wall:            time.Duration(meta.WallNS),
		FinalAccuracy:   meta.FinalAccuracy,
		EventsProcessed: meta.EventsProcessed,
	}
	reencoded, err := res.CanonicalBytes()
	if err != nil || !bytes.Equal(reencoded, canonical) {
		s.evict(dir)
		return nil, nil
	}
	return res, meta
}
