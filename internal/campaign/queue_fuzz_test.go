package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzQueueLogReplay feeds arbitrary byte-level mutations of queue logs
// to OpenQueue. Whatever the bytes, replay must never panic; when a log
// is accepted, the replayed state must be internally consistent and
// deterministic: no ref both pending and done, no duplicate pending
// refs, and a second replay of the same bytes reconstructs the same
// state.
func FuzzQueueLogReplay(f *testing.F) {
	// Seed with a realistic log: batch + single verbs, expiry, retry.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.jsonl")
	q, err := OpenQueueWithOptions(seedPath, QueueOptions{CompactEvery: -1})
	if err != nil {
		f.Fatal(err)
	}
	specs, err := tinyManifest().Expand()
	if err != nil {
		f.Fatal(err)
	}
	var items []QueueItem
	for _, spec := range specs {
		key, err := spec.Key()
		if err != nil {
			f.Fatal(err)
		}
		items = append(items, QueueItem{Ref: "c1/" + key, Key: key, Spec: spec})
	}
	if err := q.EnqueueBatch(items); err != nil {
		f.Fatal(err)
	}
	grants, err := q.ClaimBatch([]string{items[0].Ref, items[1].Ref}, "w1", 0, 2)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := q.Start(grants[0].Lease.ID); err != nil {
		f.Fatal(err)
	}
	if _, err := q.Complete(grants[0].Lease.ID, RunFailed); err != nil {
		f.Fatal(err)
	}
	if err := q.Retry(items[0].Ref, items[1].Key, items[1].Spec); err != nil {
		f.Fatal(err)
	}
	q.ExpireLeases(10)
	if err := q.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"op":"gen","gen":3}` + "\n"))
	f.Add([]byte(`{"op":"enqueue","ref":"r1","key":"k1","spec":{}}` + "\n" + `{"op":` + "\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "queue.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		q, err := OpenQueue(path)
		if err != nil {
			return // rejected logs are fine; panics are not
		}
		pending := q.Pending()
		seen := make(map[string]bool, len(pending))
		for _, it := range pending {
			if seen[it.Ref] {
				t.Fatalf("ref %q pending twice", it.Ref)
			}
			seen[it.Ref] = true
			if st, done := q.Done(it.Ref); done {
				t.Fatalf("ref %q both pending and done (%v)", it.Ref, st)
			}
			if !q.Known(it.Ref) {
				t.Fatalf("pending ref %q not known", it.Ref)
			}
		}
		if len(q.Leases()) != 0 {
			t.Fatal("replay resurrected live leases")
		}
		if err := q.Close(); err != nil {
			t.Fatal(err)
		}
		// Determinism: the same bytes replay to the same state.
		q2, err := OpenQueue(path)
		if err != nil {
			t.Fatalf("second replay of accepted log failed: %v", err)
		}
		if !reflect.DeepEqual(pending, q2.Pending()) {
			t.Fatal("second replay diverged")
		}
		_ = q2.Close()
	})
}
