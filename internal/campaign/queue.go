package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The cluster work queue is the durable tier a coordinator fans campaigns
// across worker nodes through. It is deliberately wall-clock-free: leases
// expire on a logical tick counter the coordinator advances (in production
// from a service-edge timer, in tests from the chaos harness's round
// loop), so every claim/expiry/steal interleaving is enumerable and
// reproducible.
//
// Protocol invariants (the property tests in internal/cluster/chaostest
// replay the queue log to check them):
//
//   - at most one live lease exists per run ref at any moment;
//   - execution is gated on Start, which only a live lease passes — a
//     stolen or expired lease discovers that before running, not after;
//   - Complete is accepted only from the lease that started the run, so a
//     node whose lease expired mid-run cannot overwrite the re-issued
//     attempt's outcome (its store Put is harmless: content addressing
//     makes both writers' bytes identical);
//   - an expired or stolen claim is re-queued at the front, so recovery
//     work is re-issued before new work.
//
// At manifest scales of 10^5-10^6 runs, two amortizations keep the queue
// off the critical path: batched verbs (queue_batch.go) journal one
// fsync'd multi-ref record for a whole batch of claims/starts/completes,
// and snapshot compaction (queue_snapshot.go) bounds how much log a
// restarted coordinator replays.

// Tick is the queue's logical clock. The coordinator owns advancement;
// nothing in the lease protocol reads the host clock.
type Tick int64

// LeaseID identifies one claim grant. IDs are never reused, which is what
// lets Start and Complete detect stale claims after a steal or expiry.
type LeaseID uint64

// Queue errors distinguish protocol rejections from I/O failures.
var (
	// ErrStaleLease: the lease was expired, stolen, or already completed.
	ErrStaleLease = errors.New("campaign: stale lease")
	// ErrNotPending: the ref is not claimable (unknown, leased, or done).
	ErrNotPending = errors.New("campaign: run not pending")
	// ErrNotStealable: the lease is not live, already started, or owned by
	// the would-be thief.
	ErrNotStealable = errors.New("campaign: lease not stealable")
)

// QueueItem is one pending unit of cluster work: a campaign-scoped ref,
// the run's content address, and the spec a node needs to execute it.
type QueueItem struct {
	Ref  string  `json:"ref"`
	Key  string  `json:"key"`
	Spec RunSpec `json:"spec"`
}

// Lease is one claim on a queued run. It carries the claimed spec
// privately so an expired claim can re-enter the pending queue without a
// side lookup.
type Lease struct {
	ID      LeaseID `json:"id"`
	Ref     string  `json:"ref"`
	Key     string  `json:"key"`
	Node    string  `json:"node"`
	Granted Tick    `json:"granted"`
	Expires Tick    `json:"expires"`
	Started bool    `json:"started,omitempty"`

	runSpec RunSpec
}

// QueueRecord is one line of the queue log (or snapshot). Op is one of
// the single-ref verbs — enqueue, claim, start, complete, expire, steal,
// retry — a batched verb carrying per-ref entries — enqueue-batch,
// claim-batch, start-batch, complete-batch, expire-batch — the log
// generation marker gen, or a snapshot line (snap-begin, snap-ref,
// snap-end). The log is both the queue's recovery source and the
// evidence trail the chaos property tests replay.
type QueueRecord struct {
	Op    string       `json:"op"`
	Ref   string       `json:"ref,omitempty"`
	Key   string       `json:"key,omitempty"`
	Node  string       `json:"node,omitempty"`
	Lease LeaseID      `json:"lease,omitempty"`
	Tick  Tick         `json:"tick,omitempty"`
	State RunState     `json:"state,omitempty"`
	Spec  *RunSpec     `json:"spec,omitempty"`
	Batch []BatchEntry `json:"batch,omitempty"`
	// Gen is the log generation (gen and snap-begin records): a log tail
	// belongs to the snapshot carrying the same generation.
	Gen uint64 `json:"gen,omitempty"`
	// Next is the next lease ID to grant (snap-begin records).
	Next LeaseID `json:"next,omitempty"`
	// Count is the number of refs a snapshot carries (snap-begin and
	// snap-end records), the torn-snapshot tripwire.
	Count int `json:"count,omitempty"`
}

// BatchEntry is one ref's slot inside a batched log record.
type BatchEntry struct {
	Ref   string   `json:"ref,omitempty"`
	Key   string   `json:"key,omitempty"`
	Lease LeaseID  `json:"lease,omitempty"`
	State RunState `json:"state,omitempty"`
	Spec  *RunSpec `json:"spec,omitempty"`
}

// itemNode is one deque slot; nodes are linked so claim-by-ref removal
// through the ref index is O(1) instead of an O(n) pending scan.
type itemNode struct {
	item       QueueItem
	prev, next *itemNode
}

// itemDeque is a doubly-linked pending deque with sentinel ends.
type itemDeque struct {
	head, tail itemNode // sentinels
	n          int
}

func (d *itemDeque) init() {
	d.head.next = &d.tail
	d.tail.prev = &d.head
	d.n = 0
}

func (d *itemDeque) insertAfter(at *itemNode, it QueueItem) *itemNode {
	nd := &itemNode{item: it, prev: at, next: at.next}
	at.next.prev = nd
	at.next = nd
	d.n++
	return nd
}

func (d *itemDeque) pushBack(it QueueItem) *itemNode  { return d.insertAfter(d.tail.prev, it) }
func (d *itemDeque) pushFront(it QueueItem) *itemNode { return d.insertAfter(&d.head, it) }

func (d *itemDeque) remove(nd *itemNode) {
	nd.prev.next = nd.next
	nd.next.prev = nd.prev
	nd.prev, nd.next = nil, nil
	d.n--
}

// snapshot copies up to k items in queue order; k < 0 copies all.
func (d *itemDeque) snapshot(k int) []QueueItem {
	if k < 0 || k > d.n {
		k = d.n
	}
	out := make([]QueueItem, 0, k)
	for nd := d.head.next; nd != &d.tail && len(out) < k; nd = nd.next {
		out = append(out, nd.item)
	}
	return out
}

// QueueOptions tunes a queue's durability amortization.
type QueueOptions struct {
	// CompactEvery triggers snapshot compaction after this many per-ref
	// journal entries have accumulated since the last snapshot. 0 selects
	// DefaultCompactEvery; negative disables compaction.
	CompactEvery int
}

// DefaultCompactEvery is the compaction threshold used when none is
// configured: large enough that small campaigns never compact, small
// enough that a week-old coordinator replays a bounded tail.
const DefaultCompactEvery = 1 << 14

// ReplayStats reports what OpenQueue read to reconstruct state — the
// evidence that snapshot+tail replay touches only the tail.
type ReplayStats struct {
	// UsedSnapshot reports whether a snapshot seeded the state.
	UsedSnapshot bool `json:"used_snapshot"`
	// SnapshotRefs counts refs loaded from the snapshot.
	SnapshotRefs int `json:"snapshot_refs"`
	// LogEntries counts per-ref entries replayed from the log (batch
	// records count one entry per ref they carry).
	LogEntries int `json:"log_entries"`
}

// Queue is a durable, lease-based work queue. Every state change appends
// an fsync'd JSONL record, mirroring the campaign journal's discipline:
// a coordinator crash mid-campaign recovers the queue by replaying the
// snapshot plus the log tail (live leases are invalidated on recovery —
// they belonged to the dead coordinator's epoch). Lease extension on
// heartbeat is deliberately NOT journaled: recovery re-issues outstanding
// claims anyway, so extends are pure in-memory bookkeeping and the log
// stays proportional to the number of runs, not heartbeats.
type Queue struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	snapPath string

	pending itemDeque
	slots   map[string]*itemNode // ref -> pending deque node
	leases  map[string]*Lease    // ref -> live lease
	byID    map[LeaseID]*Lease   // live leases by grant id
	done    map[string]RunState  // ref -> terminal state

	// knownOrder/orderPos/itemOf mirror exactly what full-log replay
	// reconstructs — every ref ever enqueued, in enqueue/retry order,
	// with its latest key+spec — so a snapshot written from them is
	// replay-equivalent by construction. Retries tombstone their old
	// position ("") and append, matching replay's move-to-back.
	knownOrder []string
	orderPos   map[string]int
	itemOf     map[string]QueueItem

	next LeaseID

	gen             uint64
	compactEvery    int
	tailEntries     int
	compactFailures int
	pendingRotate   uint64 // non-zero: log rotation to this gen still owed
	stats           ReplayStats
}

// QueueLogPath locates the cluster coordinator's durable queue log
// inside the store — the queue shares the store's directory tier so a
// coordinator restart finds both its results and its outstanding work in
// one place.
func (s *Store) QueueLogPath() string {
	return filepath.Join(s.root, "cluster", "queue.jsonl")
}

// QueueSnapshotPath locates the queue's compaction snapshot beside the
// log.
func (s *Store) QueueSnapshotPath() string {
	return queueSnapshotPath(s.QueueLogPath())
}

// queueSnapshotPath derives the snapshot path from the log path.
func queueSnapshotPath(logPath string) string {
	if base, ok := strings.CutSuffix(logPath, ".jsonl"); ok {
		return base + ".snap.jsonl"
	}
	return logPath + ".snap"
}

// OpenQueue opens (creating if needed) the queue log at path and replays
// it with default options. Refs that were claimed but not completed when
// the previous coordinator died return to pending, preserving enqueue
// order.
func OpenQueue(path string) (*Queue, error) {
	return OpenQueueWithOptions(path, QueueOptions{})
}

// OpenQueueWithOptions opens the queue log at path, loading the
// compaction snapshot (if one exists) plus the log tail. A compaction
// interrupted by a crash — snapshot renamed, log not yet rotated — is
// finished here before the queue accepts writes.
func OpenQueueWithOptions(path string, opts QueueOptions) (*Queue, error) {
	q := &Queue{
		path:     path,
		snapPath: queueSnapshotPath(path),
		slots:    make(map[string]*itemNode),
		leases:   make(map[string]*Lease),
		byID:     make(map[LeaseID]*Lease),
		done:     make(map[string]RunState),
		orderPos: make(map[string]int),
		itemOf:   make(map[string]QueueItem),
	}
	q.pending.init()
	q.compactEvery = opts.CompactEvery
	if q.compactEvery == 0 {
		q.compactEvery = DefaultCompactEvery
	}
	if err := q.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open queue: %w", err)
	}
	q.f = f
	return q, nil
}

// load rebuilds queue state from the snapshot (if any) and the log tail.
func (q *Queue) load() error {
	snap, err := ReadQueueSnapshot(q.snapPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("campaign: queue snapshot: %w", err)
	}
	logGen, err := logGeneration(q.path)
	if err != nil {
		return err
	}
	switch {
	case snap == nil && logGen == 0:
		if err := q.replayLog(); err != nil {
			return err
		}
	case snap == nil:
		// A rotated log without its snapshot means compacted history is
		// gone; refusing to open is the only honest answer.
		return fmt.Errorf("campaign: queue log at generation %d but snapshot %s is missing", logGen, q.snapPath)
	case logGen == snap.Gen:
		q.applySnapshot(snap)
		q.gen = snap.Gen
		if err := q.replayLog(); err != nil {
			return err
		}
	case logGen < snap.Gen:
		// Crash between the snapshot rename and the log rotation: the
		// snapshot already contains everything the stale log holds.
		// Finish the interrupted compaction by rotating the log now.
		q.applySnapshot(snap)
		q.gen = snap.Gen
		if err := q.rotateLogLocked(snap.Gen); err != nil {
			return err
		}
	default:
		return fmt.Errorf("campaign: queue log generation %d is ahead of snapshot generation %d", logGen, snap.Gen)
	}
	q.rebuildPendingLocked()
	return nil
}

// logGeneration reads the log's generation marker — the first record of
// a rotated log. Absent files, empty logs, and logs whose first record
// is a normal verb (or torn) are generation 0.
func logGeneration(path string) (uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("campaign: replay queue: %w", err)
	}
	defer func() { _ = f.Close() }()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec QueueRecord
		if json.Unmarshal(line, &rec) != nil || rec.Op != "gen" {
			return 0, nil
		}
		return rec.Gen, nil
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return 0, fmt.Errorf("campaign: replay queue: %w", err)
	}
	// An oversized or unreadable first record is replayLog's to report.
	return 0, nil
}

// replayLog rebuilds queue state from the log records. A torn trailing
// record — the crash case — is ignored, like the campaign journal's; a
// malformed record in the *middle* of the log is corruption, not a torn
// write, and is an error: silently resuming past it would drop every
// record after it and lose finished work.
func (q *Queue) replayLog() error {
	f, err := os.Open(q.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: replay queue: %w", err)
	}
	defer func() { _ = f.Close() }()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo, tornLine := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if tornLine > 0 {
			return fmt.Errorf("campaign: replay queue: corrupt record at line %d is followed by more records (line %d) — not a torn trailing write", tornLine, lineNo)
		}
		var rec QueueRecord
		if json.Unmarshal(line, &rec) != nil {
			tornLine = lineNo
			continue
		}
		q.stats.LogEntries += q.applyReplayRecord(&rec)
		q.tailEntries += recordEntries(&rec)
	}
	if err := sc.Err(); err != nil {
		// bufio.ErrTooLong included: an oversized record truncates replay
		// exactly like corruption would, so it must surface, not vanish.
		return fmt.Errorf("campaign: replay queue: %w", err)
	}
	return nil
}

// recordEntries counts the per-ref entries a record carries — the unit
// the compaction threshold is measured in.
func recordEntries(rec *QueueRecord) int {
	if len(rec.Batch) > 0 {
		return len(rec.Batch)
	}
	if rec.Op == "gen" {
		return 0
	}
	return 1
}

// applyReplayRecord folds one log record into recovery state and reports
// how many per-ref entries it carried.
func (q *Queue) applyReplayRecord(rec *QueueRecord) int {
	switch rec.Op {
	case "enqueue":
		if rec.Spec != nil {
			q.recordKnownLocked(QueueItem{Ref: rec.Ref, Key: rec.Key, Spec: *rec.Spec})
		}
	case "enqueue-batch":
		for _, e := range rec.Batch {
			if e.Spec != nil {
				q.recordKnownLocked(QueueItem{Ref: e.Ref, Key: e.Key, Spec: *e.Spec})
			}
		}
	case "claim", "steal":
		if rec.Lease >= q.next {
			q.next = rec.Lease + 1
		}
	case "claim-batch":
		for _, e := range rec.Batch {
			if e.Lease >= q.next {
				q.next = e.Lease + 1
			}
		}
	case "complete":
		if rec.Ref != "" {
			q.done[rec.Ref] = rec.State
		}
	case "complete-batch":
		for _, e := range rec.Batch {
			if e.Ref != "" {
				q.done[e.Ref] = e.State
			}
		}
	case "retry":
		if rec.Ref != "" {
			delete(q.done, rec.Ref)
			if rec.Spec != nil {
				// Honor the retry-time key/spec and its move-to-back: the
				// live queue re-queued this item at the tail with the spec
				// the retry carried, and replayed state must match it.
				q.refreshKnownLocked(QueueItem{Ref: rec.Ref, Key: rec.Key, Spec: *rec.Spec})
			}
		}
	}
	return recordEntries(rec)
}

// recordKnownLocked registers a first-time ref in enqueue order; known
// refs are left untouched (re-enqueue is a no-op).
func (q *Queue) recordKnownLocked(it QueueItem) {
	if _, known := q.orderPos[it.Ref]; known {
		return
	}
	q.orderPos[it.Ref] = len(q.knownOrder)
	q.knownOrder = append(q.knownOrder, it.Ref)
	q.itemOf[it.Ref] = it
}

// refreshKnownLocked moves a ref to the back of the known order with a
// fresh key+spec — the retry path. Unknown refs are added.
func (q *Queue) refreshKnownLocked(it QueueItem) {
	if pos, known := q.orderPos[it.Ref]; known {
		q.knownOrder[pos] = "" // tombstone; skipped on iteration
	}
	q.orderPos[it.Ref] = len(q.knownOrder)
	q.knownOrder = append(q.knownOrder, it.Ref)
	q.itemOf[it.Ref] = it
}

// rebuildPendingLocked derives the pending deque from recovery state:
// every known, non-terminal ref in order. Live leases from the previous
// epoch were never loaded, so their refs land here — re-issued.
func (q *Queue) rebuildPendingLocked() {
	for _, ref := range q.knownOrder {
		if ref == "" {
			continue
		}
		if _, finished := q.done[ref]; finished {
			continue
		}
		q.slots[ref] = q.pending.pushBack(q.itemOf[ref])
	}
}

// appendLocked journals a record with fsync, so a granted claim or a
// completion is durable before the caller acts on it.
func (q *Queue) appendLocked(rec QueueRecord) error {
	if err := q.ensureLogLocked(); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: queue log: %w", err)
	}
	if _, err := q.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("campaign: queue log: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("campaign: queue log: %w", err)
	}
	q.tailEntries += recordEntries(&rec)
	return nil
}

// ensureLogLocked retries an owed log rotation before any append: once a
// snapshot at generation G exists, appending to a log of generation < G
// would write records that recovery discards.
func (q *Queue) ensureLogLocked() error {
	if q.pendingRotate == 0 {
		return nil
	}
	gen := q.pendingRotate
	if err := q.rotateLogLocked(gen); err != nil {
		return fmt.Errorf("campaign: queue log rotation to generation %d still owed: %w", gen, err)
	}
	q.tailEntries = 0
	return nil
}

// Close releases the queue log handle.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return nil
	}
	return q.f.Close()
}

// ReplayStats reports what the queue read at open time.
func (q *Queue) ReplayStats() ReplayStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Known reports whether a ref was ever enqueued (pending, leased, or
// terminal).
func (q *Queue) Known(ref string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.itemOf[ref]
	return ok
}

// Outstanding reports how many refs are admitted but not yet terminal —
// the quantity admission backpressure caps.
func (q *Queue) Outstanding() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending.n + len(q.leases)
}

// Enqueue adds a run to the queue. Refs are idempotent: re-enqueueing a
// known ref (a resumed campaign re-fanning its manifest) is a no-op.
func (q *Queue) Enqueue(ref, key string, spec RunSpec) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, known := q.itemOf[ref]; known {
		return nil
	}
	if err := q.appendLocked(QueueRecord{Op: "enqueue", Ref: ref, Key: key, Spec: &spec}); err != nil {
		return err
	}
	it := QueueItem{Ref: ref, Key: key, Spec: spec}
	q.recordKnownLocked(it)
	q.slots[ref] = q.pending.pushBack(it)
	q.maybeCompactLocked()
	return nil
}

// Pending returns a snapshot of the claimable items in queue order — the
// routing policies' half of the (queue state, node stats) input.
func (q *Queue) Pending() []QueueItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending.snapshot(-1)
}

// PendingFront returns up to k claimable items from the front of the
// queue — the bounded projection coordinators hand to routing policies
// so a 10^5-deep backlog does not cost O(n) per work request.
func (q *Queue) PendingFront(k int) []QueueItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending.snapshot(k)
}

// Leases returns a snapshot of the live leases, ordered by grant ID so
// the view is deterministic.
func (q *Queue) Leases() []Lease {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Lease, 0, len(q.byID))
	for _, l := range q.byID {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LeaseByID resolves one live lease — the coordinator's O(1) ownership
// check on start/complete reports.
func (q *Queue) LeaseByID(id LeaseID) (Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.byID[id]
	if !ok {
		return Lease{}, false
	}
	return *l, true
}

// Claim grants a lease on a pending ref to node, expiring at now+ttl
// unless extended by heartbeats. The ref must currently be pending (the
// caller picked it from a Pending snapshot; a lost race reports
// ErrNotPending and the caller re-picks).
func (q *Queue) Claim(ref, node string, now, ttl Tick) (Lease, RunSpec, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	nd, ok := q.slots[ref]
	if !ok {
		return Lease{}, RunSpec{}, fmt.Errorf("%w: %s", ErrNotPending, ref)
	}
	item := nd.item
	lease := &Lease{ID: q.next, Ref: item.Ref, Key: item.Key, Node: node, Granted: now, Expires: now + ttl, runSpec: item.Spec}
	if err := q.appendLocked(QueueRecord{Op: "claim", Ref: item.Ref, Key: item.Key, Node: node, Lease: lease.ID, Tick: now}); err != nil {
		return Lease{}, RunSpec{}, err
	}
	q.next++
	q.pending.remove(nd)
	delete(q.slots, item.Ref)
	q.leases[item.Ref] = lease
	q.byID[lease.ID] = lease
	q.maybeCompactLocked()
	return *lease, item.Spec, nil
}

// Extend refreshes every live lease held by node to expire at now+ttl —
// the heartbeat path. Extends are in-memory only (see Queue's doc).
func (q *Queue) Extend(node string, now, ttl Tick) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, l := range q.leases {
		if l.Node == node {
			l.Expires = now + ttl
		}
	}
}

// Start is the execution gate: it marks the lease's run as being executed
// and fails with ErrStaleLease if the lease is no longer live (stolen,
// expired, or superseded). A node must pass Start before running a
// claimed spec — this is what keeps a stolen backlog entry from being
// executed twice. The surviving lease is returned so callers can map it
// back to campaign runs.
func (q *Queue) Start(id LeaseID) (Lease, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.byID[id]
	if !ok {
		return Lease{}, fmt.Errorf("%w: lease %d", ErrStaleLease, id)
	}
	if err := q.appendLocked(QueueRecord{Op: "start", Ref: l.Ref, Key: l.Key, Node: l.Node, Lease: id}); err != nil {
		return Lease{}, err
	}
	l.Started = true
	q.maybeCompactLocked()
	return *l, nil
}

// Complete finishes the lease's run with a terminal state. Only the live
// lease that passed Start can complete its ref; completions from expired
// or stolen leases — or from a lease that never started its run — report
// ErrStaleLease and leave the re-issued attempt in charge.
func (q *Queue) Complete(id LeaseID, state RunState) (Lease, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, err := q.completableLocked(id, state)
	if err != nil {
		return Lease{}, err
	}
	if err := q.appendLocked(QueueRecord{Op: "complete", Ref: l.Ref, Key: l.Key, Node: l.Node, Lease: id, State: state}); err != nil {
		return Lease{}, err
	}
	q.finishLeaseLocked(l, state)
	q.maybeCompactLocked()
	return *l, nil
}

// completableLocked validates a completion attempt against the lease
// protocol without applying it.
func (q *Queue) completableLocked(id LeaseID, state RunState) (*Lease, error) {
	l, ok := q.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: lease %d", ErrStaleLease, id)
	}
	if !state.Terminal() {
		return nil, fmt.Errorf("campaign: complete with non-terminal state %q", state)
	}
	if !l.Started {
		return nil, fmt.Errorf("%w: lease %d never started its run", ErrStaleLease, id)
	}
	return l, nil
}

// finishLeaseLocked retires a validated, journaled completion.
func (q *Queue) finishLeaseLocked(l *Lease, state RunState) {
	delete(q.byID, l.ID)
	delete(q.leases, l.Ref)
	q.done[l.Ref] = state
}

// Retry clears a ref's terminal state and re-queues it — the resume path
// for a run whose journaled outcome can no longer be served from the
// store (a failed run, or a done run whose entry was evicted). The ref
// becomes claimable again under a fresh lease; without this, a resumed
// campaign would count the ref as outstanding while the queue forever
// refused to re-issue it.
func (q *Queue) Retry(ref, key string, spec RunSpec) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, done := q.done[ref]; !done {
		return fmt.Errorf("campaign: retry of non-terminal ref %s", ref)
	}
	if err := q.appendLocked(QueueRecord{Op: "retry", Ref: ref, Key: key, Spec: &spec}); err != nil {
		return err
	}
	delete(q.done, ref)
	it := QueueItem{Ref: ref, Key: key, Spec: spec}
	q.refreshKnownLocked(it)
	q.slots[ref] = q.pending.pushBack(it)
	q.maybeCompactLocked()
	return nil
}

// ExpireLeases revokes every lease whose expiry has passed and re-queues
// its run at the front, returning the revoked leases in grant order. This
// is the node-failure recovery path: a dead node stops heartbeating, its
// leases expire, and its claims are re-issued to live nodes. All expiries
// of one sweep share a single fsync'd expire-batch record, so a mass node
// death at 10^5 leases is not 10^5 syncs.
func (q *Queue) ExpireLeases(now Tick) []Lease {
	q.mu.Lock()
	defer q.mu.Unlock()
	ids := make([]LeaseID, 0, len(q.byID))
	for id, l := range q.byID {
		if l.Expires <= now {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	entries := make([]BatchEntry, len(ids))
	for i, id := range ids {
		l := q.byID[id]
		entries[i] = BatchEntry{Ref: l.Ref, Key: l.Key, Lease: id}
	}
	rec := QueueRecord{Op: "expire-batch", Tick: now, Batch: entries}
	if len(ids) == 1 {
		// Single expiries keep the classic record shape for log readers.
		l := q.byID[ids[0]]
		rec = QueueRecord{Op: "expire", Ref: l.Ref, Key: l.Key, Node: l.Node, Lease: ids[0], Tick: now}
	}
	if err := q.appendLocked(rec); err != nil {
		return nil // keep the leases; a later sweep retries the journal write
	}
	expired := make([]Lease, 0, len(ids))
	for _, id := range ids {
		l := q.byID[id]
		expired = append(expired, *l)
		delete(q.byID, id)
		delete(q.leases, l.Ref)
		q.slots[l.Ref] = q.pending.pushFront(QueueItem{Ref: l.Ref, Key: l.Key, Spec: l.runSpec})
	}
	q.maybeCompactLocked()
	return expired
}

// Steal revokes another node's live, not-yet-started lease and re-grants
// the run to thief — the work-stealing path for stragglers. A started
// lease is not stealable: the victim is executing, and revoking it would
// make the "no run executes twice" property depend on racing the victim.
func (q *Queue) Steal(ref, thief string, now, ttl Tick) (Lease, RunSpec, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	victim, ok := q.leases[ref]
	if !ok || victim.Started || victim.Node == thief {
		return Lease{}, RunSpec{}, fmt.Errorf("%w: %s", ErrNotStealable, ref)
	}
	lease := &Lease{ID: q.next, Ref: ref, Key: victim.Key, Node: thief, Granted: now, Expires: now + ttl, runSpec: victim.runSpec}
	if err := q.appendLocked(QueueRecord{Op: "steal", Ref: ref, Key: victim.Key, Node: thief, Lease: lease.ID, Tick: now}); err != nil {
		return Lease{}, RunSpec{}, err
	}
	q.next++
	delete(q.byID, victim.ID)
	q.leases[ref] = lease
	q.byID[lease.ID] = lease
	q.maybeCompactLocked()
	return *lease, lease.runSpec, nil
}

// Done reports a ref's terminal state, if it has one.
func (q *Queue) Done(ref string) (RunState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	st, ok := q.done[ref]
	return st, ok
}

// Depth reports how many runs are pending and how many are leased.
func (q *Queue) Depth() (pending, leased int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending.n, len(q.leases)
}

// ReadQueueLog parses a queue log into its records — the evidence trail
// the chaos property tests assert protocol invariants over. A torn
// trailing record is dropped, mirroring replay; a malformed record
// followed by further records is corruption and errors, also mirroring
// replay.
func ReadQueueLog(path string) ([]QueueRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read queue log: %w", err)
	}
	defer func() { _ = f.Close() }()
	var recs []QueueRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo, tornLine := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if tornLine > 0 {
			return nil, fmt.Errorf("campaign: read queue log: corrupt record at line %d is followed by more records (line %d)", tornLine, lineNo)
		}
		var rec QueueRecord
		if json.Unmarshal(line, &rec) != nil {
			tornLine = lineNo
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read queue log: %w", err)
	}
	return recs, nil
}
