package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The cluster work queue is the durable tier a coordinator fans campaigns
// across worker nodes through. It is deliberately wall-clock-free: leases
// expire on a logical tick counter the coordinator advances (in production
// from a service-edge timer, in tests from the chaos harness's round
// loop), so every claim/expiry/steal interleaving is enumerable and
// reproducible.
//
// Protocol invariants (the property tests in internal/cluster/chaostest
// replay the queue log to check them):
//
//   - at most one live lease exists per run ref at any moment;
//   - execution is gated on Start, which only a live lease passes — a
//     stolen or expired lease discovers that before running, not after;
//   - Complete is accepted only from the lease that started the run, so a
//     node whose lease expired mid-run cannot overwrite the re-issued
//     attempt's outcome (its store Put is harmless: content addressing
//     makes both writers' bytes identical);
//   - an expired or stolen claim is re-queued at the front, so recovery
//     work is re-issued before new work.

// Tick is the queue's logical clock. The coordinator owns advancement;
// nothing in the lease protocol reads the host clock.
type Tick int64

// LeaseID identifies one claim grant. IDs are never reused, which is what
// lets Start and Complete detect stale claims after a steal or expiry.
type LeaseID uint64

// Queue errors distinguish protocol rejections from I/O failures.
var (
	// ErrStaleLease: the lease was expired, stolen, or already completed.
	ErrStaleLease = errors.New("campaign: stale lease")
	// ErrNotPending: the ref is not claimable (unknown, leased, or done).
	ErrNotPending = errors.New("campaign: run not pending")
	// ErrNotStealable: the lease is not live, already started, or owned by
	// the would-be thief.
	ErrNotStealable = errors.New("campaign: lease not stealable")
)

// QueueItem is one pending unit of cluster work: a campaign-scoped ref,
// the run's content address, and the spec a node needs to execute it.
type QueueItem struct {
	Ref  string  `json:"ref"`
	Key  string  `json:"key"`
	Spec RunSpec `json:"spec"`
}

// Lease is one claim on a queued run. It carries the claimed spec
// privately so an expired claim can re-enter the pending queue without a
// side lookup.
type Lease struct {
	ID      LeaseID `json:"id"`
	Ref     string  `json:"ref"`
	Key     string  `json:"key"`
	Node    string  `json:"node"`
	Granted Tick    `json:"granted"`
	Expires Tick    `json:"expires"`
	Started bool    `json:"started,omitempty"`

	runSpec RunSpec
}

// QueueRecord is one line of the queue log. Op is one of enqueue, claim,
// start, complete, expire, steal, retry. The log is both the queue's
// recovery source and the evidence trail the chaos property tests replay.
type QueueRecord struct {
	Op    string   `json:"op"`
	Ref   string   `json:"ref,omitempty"`
	Key   string   `json:"key,omitempty"`
	Node  string   `json:"node,omitempty"`
	Lease LeaseID  `json:"lease,omitempty"`
	Tick  Tick     `json:"tick,omitempty"`
	State RunState `json:"state,omitempty"`
	Spec  *RunSpec `json:"spec,omitempty"`
}

// Queue is a durable, lease-based work queue. Every state change appends
// an fsync'd JSONL record, mirroring the campaign journal's discipline:
// a coordinator crash mid-campaign recovers the queue by replaying the
// log (live leases are invalidated on recovery — they belonged to the
// dead coordinator's epoch). Lease extension on heartbeat is deliberately
// NOT journaled: recovery re-issues outstanding claims anyway, so extends
// are pure in-memory bookkeeping and the log stays proportional to the
// number of runs, not heartbeats.
type Queue struct {
	mu      sync.Mutex
	f       *os.File
	pending []QueueItem
	leases  map[string]*Lease   // ref -> live lease
	byID    map[LeaseID]*Lease  // live leases by grant id
	done    map[string]RunState // ref -> terminal state
	known   map[string]bool     // every ref ever enqueued (dedup)
	next    LeaseID
}

// QueueLogPath locates the cluster coordinator's durable queue log
// inside the store — the queue shares the store's directory tier so a
// coordinator restart finds both its results and its outstanding work in
// one place.
func (s *Store) QueueLogPath() string {
	return filepath.Join(s.root, "cluster", "queue.jsonl")
}

// OpenQueue opens (creating if needed) the queue log at path and replays
// it. Refs that were claimed but not completed when the previous
// coordinator died return to pending, preserving enqueue order.
func OpenQueue(path string) (*Queue, error) {
	q := &Queue{
		leases: make(map[string]*Lease),
		byID:   make(map[LeaseID]*Lease),
		done:   make(map[string]RunState),
		known:  make(map[string]bool),
	}
	if err := q.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open queue: %w", err)
	}
	q.f = f
	return q, nil
}

// replay rebuilds queue state from the log. A torn trailing record — the
// crash case — is ignored, like the campaign journal's.
func (q *Queue) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: replay queue: %w", err)
	}
	defer func() { _ = f.Close() }()
	var order []string
	specs := make(map[string]QueueItem)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec QueueRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn trailing write; nothing after it is reachable
		}
		switch rec.Op {
		case "enqueue":
			if rec.Spec != nil && !q.known[rec.Ref] {
				q.known[rec.Ref] = true
				order = append(order, rec.Ref)
				specs[rec.Ref] = QueueItem{Ref: rec.Ref, Key: rec.Key, Spec: *rec.Spec}
			}
		case "claim", "steal":
			if rec.Lease >= q.next {
				q.next = rec.Lease + 1
			}
		case "complete":
			if rec.Ref != "" {
				q.done[rec.Ref] = rec.State
			}
		case "retry":
			if rec.Ref != "" {
				delete(q.done, rec.Ref)
				if rec.Spec != nil && !q.known[rec.Ref] {
					q.known[rec.Ref] = true
					order = append(order, rec.Ref)
					specs[rec.Ref] = QueueItem{Ref: rec.Ref, Key: rec.Key, Spec: *rec.Spec}
				}
			}
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("campaign: replay queue: %w", err)
	}
	for _, ref := range order {
		if _, finished := q.done[ref]; !finished {
			q.pending = append(q.pending, specs[ref])
		}
	}
	return nil
}

// appendLocked journals a record with fsync, so a granted claim or a
// completion is durable before the caller acts on it.
func (q *Queue) appendLocked(rec QueueRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: queue log: %w", err)
	}
	if _, err := q.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("campaign: queue log: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("campaign: queue log: %w", err)
	}
	return nil
}

// Close releases the queue log handle.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.f.Close()
}

// Enqueue adds a run to the queue. Refs are idempotent: re-enqueueing a
// known ref (a resumed campaign re-fanning its manifest) is a no-op.
func (q *Queue) Enqueue(ref, key string, spec RunSpec) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.known[ref] {
		return nil
	}
	if err := q.appendLocked(QueueRecord{Op: "enqueue", Ref: ref, Key: key, Spec: &spec}); err != nil {
		return err
	}
	q.known[ref] = true
	q.pending = append(q.pending, QueueItem{Ref: ref, Key: key, Spec: spec})
	return nil
}

// Pending returns a snapshot of the claimable items in queue order — the
// routing policies' half of the (queue state, node stats) input.
func (q *Queue) Pending() []QueueItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]QueueItem(nil), q.pending...)
}

// Leases returns a snapshot of the live leases, ordered by grant ID so
// the view is deterministic.
func (q *Queue) Leases() []Lease {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Lease, 0, len(q.byID))
	for _, l := range q.byID {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Claim grants a lease on a pending ref to node, expiring at now+ttl
// unless extended by heartbeats. The ref must currently be pending (the
// caller picked it from a Pending snapshot; a lost race reports
// ErrNotPending and the caller re-picks).
func (q *Queue) Claim(ref, node string, now, ttl Tick) (Lease, RunSpec, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	idx := -1
	for i, it := range q.pending {
		if it.Ref == ref {
			idx = i
			break
		}
	}
	if idx < 0 {
		return Lease{}, RunSpec{}, fmt.Errorf("%w: %s", ErrNotPending, ref)
	}
	item := q.pending[idx]
	lease := &Lease{ID: q.next, Ref: item.Ref, Key: item.Key, Node: node, Granted: now, Expires: now + ttl, runSpec: item.Spec}
	if err := q.appendLocked(QueueRecord{Op: "claim", Ref: item.Ref, Key: item.Key, Node: node, Lease: lease.ID, Tick: now}); err != nil {
		return Lease{}, RunSpec{}, err
	}
	q.next++
	q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
	q.leases[item.Ref] = lease
	q.byID[lease.ID] = lease
	return *lease, item.Spec, nil
}

// Extend refreshes every live lease held by node to expire at now+ttl —
// the heartbeat path. Extends are in-memory only (see Queue's doc).
func (q *Queue) Extend(node string, now, ttl Tick) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, l := range q.leases {
		if l.Node == node {
			l.Expires = now + ttl
		}
	}
}

// Start is the execution gate: it marks the lease's run as being executed
// and fails with ErrStaleLease if the lease is no longer live (stolen,
// expired, or superseded). A node must pass Start before running a
// claimed spec — this is what keeps a stolen backlog entry from being
// executed twice. The surviving lease is returned so callers can map it
// back to campaign runs.
func (q *Queue) Start(id LeaseID) (Lease, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.byID[id]
	if !ok {
		return Lease{}, fmt.Errorf("%w: lease %d", ErrStaleLease, id)
	}
	if err := q.appendLocked(QueueRecord{Op: "start", Ref: l.Ref, Key: l.Key, Node: l.Node, Lease: id}); err != nil {
		return Lease{}, err
	}
	l.Started = true
	return *l, nil
}

// Complete finishes the lease's run with a terminal state. Only the live
// lease that passed Start can complete its ref; completions from expired
// or stolen leases — or from a lease that never started its run — report
// ErrStaleLease and leave the re-issued attempt in charge.
func (q *Queue) Complete(id LeaseID, state RunState) (Lease, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.byID[id]
	if !ok {
		return Lease{}, fmt.Errorf("%w: lease %d", ErrStaleLease, id)
	}
	if !state.Terminal() {
		return Lease{}, fmt.Errorf("campaign: complete with non-terminal state %q", state)
	}
	if !l.Started {
		return Lease{}, fmt.Errorf("%w: lease %d never started its run", ErrStaleLease, id)
	}
	if err := q.appendLocked(QueueRecord{Op: "complete", Ref: l.Ref, Key: l.Key, Node: l.Node, Lease: id, State: state}); err != nil {
		return Lease{}, err
	}
	delete(q.byID, id)
	delete(q.leases, l.Ref)
	q.done[l.Ref] = state
	return *l, nil
}

// Retry clears a ref's terminal state and re-queues it — the resume path
// for a run whose journaled outcome can no longer be served from the
// store (a failed run, or a done run whose entry was evicted). The ref
// becomes claimable again under a fresh lease; without this, a resumed
// campaign would count the ref as outstanding while the queue forever
// refused to re-issue it.
func (q *Queue) Retry(ref, key string, spec RunSpec) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, done := q.done[ref]; !done {
		return fmt.Errorf("campaign: retry of non-terminal ref %s", ref)
	}
	if err := q.appendLocked(QueueRecord{Op: "retry", Ref: ref, Key: key, Spec: &spec}); err != nil {
		return err
	}
	delete(q.done, ref)
	q.known[ref] = true
	q.pending = append(q.pending, QueueItem{Ref: ref, Key: key, Spec: spec})
	return nil
}

// ExpireLeases revokes every lease whose expiry has passed and re-queues
// its run at the front, returning the revoked leases in grant order. This
// is the node-failure recovery path: a dead node stops heartbeating, its
// leases expire, and its claims are re-issued to live nodes.
func (q *Queue) ExpireLeases(now Tick) []Lease {
	q.mu.Lock()
	defer q.mu.Unlock()
	var expired []Lease
	ids := make([]LeaseID, 0, len(q.byID))
	for id := range q.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := q.byID[id]
		if l.Expires > now {
			continue
		}
		if err := q.appendLocked(QueueRecord{Op: "expire", Ref: l.Ref, Key: l.Key, Node: l.Node, Lease: id, Tick: now}); err != nil {
			continue // keep the lease; a later sweep retries the journal write
		}
		expired = append(expired, *l)
		delete(q.byID, id)
		delete(q.leases, l.Ref)
		q.pending = append([]QueueItem{{Ref: l.Ref, Key: l.Key, Spec: l.runSpec}}, q.pending...)
	}
	return expired
}

// Steal revokes another node's live, not-yet-started lease and re-grants
// the run to thief — the work-stealing path for stragglers. A started
// lease is not stealable: the victim is executing, and revoking it would
// make the "no run executes twice" property depend on racing the victim.
func (q *Queue) Steal(ref, thief string, now, ttl Tick) (Lease, RunSpec, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	victim, ok := q.leases[ref]
	if !ok || victim.Started || victim.Node == thief {
		return Lease{}, RunSpec{}, fmt.Errorf("%w: %s", ErrNotStealable, ref)
	}
	lease := &Lease{ID: q.next, Ref: ref, Key: victim.Key, Node: thief, Granted: now, Expires: now + ttl, runSpec: victim.runSpec}
	if err := q.appendLocked(QueueRecord{Op: "steal", Ref: ref, Key: victim.Key, Node: thief, Lease: lease.ID, Tick: now}); err != nil {
		return Lease{}, RunSpec{}, err
	}
	q.next++
	delete(q.byID, victim.ID)
	q.leases[ref] = lease
	q.byID[lease.ID] = lease
	return *lease, lease.runSpec, nil
}

// Done reports a ref's terminal state, if it has one.
func (q *Queue) Done(ref string) (RunState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	st, ok := q.done[ref]
	return st, ok
}

// Depth reports how many runs are pending and how many are leased.
func (q *Queue) Depth() (pending, leased int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending), len(q.leases)
}

// ReadQueueLog parses a queue log into its records — the evidence trail
// the chaos property tests assert protocol invariants over. A torn
// trailing record is dropped, mirroring replay.
func ReadQueueLog(path string) ([]QueueRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read queue log: %w", err)
	}
	defer func() { _ = f.Close() }()
	var recs []QueueRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec QueueRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return nil, fmt.Errorf("campaign: read queue log: %w", err)
	}
	return recs, nil
}
