package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The campaign journal is the resume protocol's source of truth: an
// append-only JSONL file under <store>/campaigns/<id>.jsonl whose first
// record is the submitted manifest and whose subsequent records are
// terminal run states, each fsync'd before the scheduler reports the run
// finished. A campaign killed mid-flight therefore leaves (a) a manifest
// that re-expands to the identical spec list and keys, and (b) a store
// holding every run that completed. Resuming re-runs the campaign from the
// journaled manifest: completed runs are store hits served byte-identically
// without execution, unfinished ones execute as usual — so the resumed
// campaign's final output is byte-identical to an uninterrupted one's.

// journalRecord is one line of the journal file.
type journalRecord struct {
	// Type is "manifest" or "run".
	Type string `json:"type"`
	// ID repeats the campaign ID on manifest records, for self-description.
	ID       string     `json:"id,omitempty"`
	Manifest *Manifest  `json:"manifest,omitempty"`
	Run      *RunStatus `json:"run,omitempty"`
}

// journalPath locates a campaign's journal inside the store.
func (s *Store) journalPath(id string) string {
	return filepath.Join(s.root, "campaigns", id+".jsonl")
}

// JournalPath returns the campaign's journal location inside the store —
// the file ResumeCampaign reads and cmd/roadrunnerd scans at startup.
func (s *Store) JournalPath(id string) string { return s.journalPath(id) }

// JournaledCampaignIDs lists every campaign with a journal in the store,
// sorted, so a restarted service can resume interrupted work.
func (s *Store) JournaledCampaignIDs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "campaigns"))
	if err != nil {
		return nil, fmt.Errorf("campaign: list journals: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".jsonl"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Journal appends records for one running campaign. External drivers
// (the cluster coordinator) obtain one via Store.OpenJournal and record
// terminal run states through it, so cluster campaigns resume with the
// same protocol as single-node ones.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens the campaign's journal inside the store, repairing a
// torn tail and writing the manifest header if needed.
func (s *Store) OpenJournal(c *Campaign) (*Journal, error) {
	return openJournal(s.journalPath(c.ID()), c)
}

// repairJournal measures the journal's valid prefix: complete,
// newline-terminated, parseable records starting with the manifest
// header. Everything past it — a torn trailing write from a crash — must
// be truncated before appending resumes, because a record appended after
// a torn line concatenates onto it, and replay (which stops at the first
// unparseable line) would then lose every record after the tear. That
// failure mode is load-bearing for lease recovery: it would silently
// un-journal completed runs on the second crash.
func repairJournal(path string) (validSize int64, hasManifest bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("campaign: repair journal: %w", err)
	}
	for off := 0; off < len(data); {
		nl := bytesIndexNewline(data[off:])
		if nl < 0 {
			break // torn tail: no terminating newline
		}
		line := data[off : off+nl]
		if len(line) > 0 {
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil {
				break
			}
			if !hasManifest {
				// The first record must be the manifest header; a journal
				// whose header is unreadable has no usable records at all.
				if rec.Type != "manifest" || rec.Manifest == nil {
					break
				}
				hasManifest = true
			}
		}
		off += nl + 1
		validSize = int64(off)
	}
	return validSize, hasManifest, nil
}

func bytesIndexNewline(b []byte) int {
	for i, c := range b {
		if c == '\n' {
			return i
		}
	}
	return -1
}

// openJournal opens (or creates) the campaign's journal, truncating any
// torn tail from a previous crash and (re)writing the manifest header
// record when the valid prefix lacks one.
func openJournal(path string, c *Campaign) (*Journal, error) {
	validSize, hasManifest, err := repairJournal(path)
	if err != nil {
		return nil, err
	}
	if !hasManifest {
		validSize = 0
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	if err := f.Truncate(validSize); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	j := &Journal{f: f}
	if validSize == 0 {
		m := c.Manifest()
		if err := j.append(journalRecord{Type: "manifest", ID: c.ID(), Manifest: &m}); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return j, nil
}

func (j *Journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	return nil
}

// RecordRun journals a terminal run state. Journal write failures must not
// take down the campaign — the journal is an acceleration of resume, the
// store itself remains the ground truth — so errors are swallowed after
// best effort.
func (j *Journal) RecordRun(run RunStatus) {
	_ = j.append(journalRecord{Type: "run", Run: &run})
}

// Close releases the journal's file handle.
func (j *Journal) Close() { _ = j.f.Close() }

// ReadJournal parses a campaign journal, returning the submitted manifest
// and the terminal run states that were recorded before the process
// stopped (later records for the same key supersede earlier ones). A
// partially written trailing line — the crash case — is ignored.
func ReadJournal(path string) (Manifest, map[string]RunStatus, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("campaign: read journal: %w", err)
	}
	defer func() { _ = f.Close() }()

	var manifest *Manifest
	runs := make(map[string]RunStatus)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn trailing write is expected after a crash; anything
			// unparseable after that is unreachable anyway.
			break
		}
		switch rec.Type {
		case "manifest":
			if rec.Manifest != nil && manifest == nil {
				manifest = rec.Manifest
			}
		case "run":
			if rec.Run != nil && rec.Run.Key != "" {
				runs[rec.Run.Key] = *rec.Run
			}
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return Manifest{}, nil, fmt.Errorf("campaign: read journal: %w", err)
	}
	if manifest == nil {
		return Manifest{}, nil, fmt.Errorf("campaign: journal %s has no manifest record", path)
	}
	return *manifest, runs, nil
}

// ResumeCampaign rebuilds a campaign from its journal and runs it to
// completion. Runs that completed before the interruption are store hits
// (no ticks execute, bytes identical); everything else executes normally.
// It requires a scheduler with a store — journals live inside it.
func (s *Scheduler) ResumeCampaign(id string) (*Campaign, []TaskResult, error) {
	if s.store == nil {
		return nil, nil, fmt.Errorf("campaign: resume needs a store-backed scheduler")
	}
	manifest, _, err := ReadJournal(s.store.journalPath(id))
	if err != nil {
		return nil, nil, err
	}
	c, err := NewCampaign(id, manifest)
	if err != nil {
		return nil, nil, err
	}
	results, err := s.RunCampaign(c)
	if err != nil {
		return nil, nil, err
	}
	return c, results, nil
}
