package campaign

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// Journal replay edge cases, table-driven: each case writes a journal
// file byte-for-byte, replays it, and checks what survives. The torn-tail
// cases are the load-bearing ones for lease recovery — a crashed worker's
// re-issued runs are only served from the store if the journal that
// proves them complete stays readable across append sessions.

const replayManifestLine = `{"type":"manifest","id":"c0100-replay","manifest":{"name":"smoke","env":"tiny","rounds":2,"strategies":[{"kind":"fedavg"},{"kind":"opp"}],"seeds":[1]}}`

func runLine(key, state string) string {
	return fmt.Sprintf(`{"type":"run","run":{"name":"r-%s","key":"%s","state":"%s"}}`, key[:4], key, state)
}

func hexKey(fill byte) string { return strings.Repeat(string(fill), 64) }

func TestReadJournalEdgeCases(t *testing.T) {
	keyA, keyB := hexKey('a'), hexKey('b')
	cases := []struct {
		name      string
		content   string
		wantErr   bool
		wantRuns  int
		wantState map[string]RunState
	}{
		{
			name:     "truncated final record is dropped",
			content:  replayManifestLine + "\n" + runLine(keyA, "done") + "\n" + `{"type":"run","run":{"na`,
			wantRuns: 1,
			wantState: map[string]RunState{
				keyA: RunDone,
			},
		},
		{
			name:     "truncated record without any newline",
			content:  replayManifestLine + "\n" + runLine(keyA, "done") + "\n" + runLine(keyB, "done")[:20],
			wantRuns: 1,
		},
		{
			name:     "duplicate entries: later record supersedes earlier",
			content:  replayManifestLine + "\n" + runLine(keyA, "failed") + "\n" + runLine(keyA, "done") + "\n",
			wantRuns: 1,
			wantState: map[string]RunState{
				keyA: RunDone,
			},
		},
		{
			name:     "duplicate identical entries collapse",
			content:  replayManifestLine + "\n" + runLine(keyA, "done") + "\n" + runLine(keyA, "done") + "\n" + runLine(keyB, "cached") + "\n",
			wantRuns: 2,
			wantState: map[string]RunState{
				keyA: RunDone,
				keyB: RunCached,
			},
		},
		{
			name:    "torn manifest line is unreadable",
			content: replayManifestLine[:30],
			wantErr: true,
		},
		{
			name:    "empty journal",
			content: "",
			wantErr: true,
		},
		{
			name:     "blank lines are skipped",
			content:  replayManifestLine + "\n\n" + runLine(keyA, "done") + "\n",
			wantRuns: 1,
		},
		{
			name:     "records after an unparseable middle line are unreachable",
			content:  replayManifestLine + "\n" + "not json\n" + runLine(keyA, "done") + "\n",
			wantRuns: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			path := store.journalPath("c0100-replay")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			m, runs, err := ReadJournal(path)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("replay accepted, want error (manifest %+v)", m)
				}
				return
			}
			if err != nil {
				t.Fatalf("replay failed: %v", err)
			}
			if m.Name != "smoke" {
				t.Fatalf("manifest name %q", m.Name)
			}
			if len(runs) != tc.wantRuns {
				t.Fatalf("replayed %d runs, want %d: %+v", len(runs), tc.wantRuns, runs)
			}
			for key, state := range tc.wantState {
				if runs[key].State != state {
					t.Fatalf("run %s state %q, want %q", key[:4], runs[key].State, state)
				}
			}
		})
	}
}

// TestOpenJournalRepairsTornTail is the regression test for the
// partial-write append bug: appending after a torn trailing record used
// to concatenate the new record onto the tear, so the NEXT replay lost
// every record after it. openJournal must truncate the tear first.
func TestOpenJournalRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign("c0100-replay", tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	keys := c.Keys()
	path := store.journalPath(c.ID())

	// Crash artifact: one complete run record, then a torn half-record.
	torn := replayManifestLine + "\n" + runLine(keys[0], "done") + "\n" + `{"type":"run","run":{"name":"torn`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// The resumed process appends the second run's terminal record.
	j, err := store.OpenJournal(c)
	if err != nil {
		t.Fatal(err)
	}
	j.RecordRun(RunStatus{Name: "r2", Key: keys[1], State: RunDone})
	j.Close()

	// Replay must now see BOTH runs: the pre-crash record and the
	// appended one, with the tear gone.
	_, runs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("replay after torn-tail append found %d runs, want 2: %+v", len(runs), runs)
	}
	if runs[keys[0]].State != RunDone || runs[keys[1]].State != RunDone {
		t.Fatalf("run states: %+v", runs)
	}
}

// TestOpenJournalRewritesTornManifest: a crash inside the very first
// write leaves a torn manifest line; opening the journal again must
// rewrite the header so the campaign stays resumable.
func TestOpenJournalRewritesTornManifest(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign("c0100-replay", tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	path := store.journalPath(c.ID())
	if err := os.WriteFile(path, []byte(replayManifestLine[:25]), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := store.OpenJournal(c)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	m, runs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("journal unreadable after torn-manifest repair: %v", err)
	}
	if m.Name != "smoke" || len(runs) != 0 {
		t.Fatalf("repaired journal: manifest %q, %d runs", m.Name, len(runs))
	}
}

// TestResumeAlreadyCompleteCampaign replays a campaign whose every run
// already finished: resume must be a pure cache pass — zero fresh
// executions — and the journal must absorb the duplicate terminal
// records without confusing a later replay.
func TestResumeAlreadyCompleteCampaign(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sched := instantScheduler(t, Options{Workers: 2, Store: store})
	c, err := NewCampaign("c0100-complete", tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.RunCampaign(c); err != nil {
		t.Fatal(err)
	}
	if st := sched.Stats(); st.Executed != 2 {
		t.Fatalf("cold pass executed %d, want 2", st.Executed)
	}

	// Resume the finished campaign in a "restarted" process.
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sched2 := instantScheduler(t, Options{Workers: 2, Store: store2})
	c2, results, err := sched2.ResumeCampaign(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range results {
		if tr.Err != nil || !tr.Cached {
			t.Fatalf("resumed run %d not a cache hit: %+v", i, tr)
		}
	}
	if st := sched2.Stats(); st.Executed != 0 || st.Cached != 2 {
		t.Fatalf("resume of complete campaign executed fresh runs: %+v", st)
	}
	if st := c2.Status(); !st.Done || st.Cached != 2 {
		t.Fatalf("resumed status: %+v", st)
	}

	// The journal now holds duplicate terminal records per key (one per
	// pass); a third replay still resolves to one state per key.
	_, runs, err := ReadJournal(store.JournalPath(c.ID()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("journal replay found %d keys, want 2", len(runs))
	}
	for key, run := range runs {
		if run.State != RunCached && run.State != RunDone {
			t.Fatalf("key %s replayed non-terminal state %q", key[:4], run.State)
		}
	}
}
