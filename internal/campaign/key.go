package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"roadrunner/internal/core"
)

// keyFormatVersion prefixes every hashed spec encoding. Bump it whenever
// the canonical encoding or the simulator's result semantics change in a
// way that invalidates stored results: old store entries then simply stop
// matching instead of being served for runs they no longer describe.
const keyFormatVersion = "roadrunner-runkey-v1"

// RunSpec is one fully specified experiment: a configuration (seed and
// fault plan included) plus a declarative strategy. It is the unit the
// scheduler executes and the store addresses.
type RunSpec struct {
	// Name labels the run inside its campaign; it carries no semantic
	// weight and is excluded from the run key.
	Name string `json:"name"`
	// Strategy selects and parameterizes the learning strategy.
	Strategy StrategySpec `json:"strategy"`
	// Config is the complete experiment configuration.
	Config core.Config `json:"config"`
}

// CanonicalBytes is the byte-stable encoding the run key hashes: the key
// format version, the strategy spec, and the canonical configuration
// encoding (which covers the (config, seed, faults.Plan) triple and
// normalizes away result-invariant fields). Labels are excluded — renaming
// a run must not invalidate its cached result.
func (r RunSpec) CanonicalBytes() ([]byte, error) {
	stratJSON, err := json.Marshal(r.Strategy)
	if err != nil {
		return nil, fmt.Errorf("campaign: canonical spec: %w", err)
	}
	cfgJSON, err := core.CanonicalConfigJSON(r.Config)
	if err != nil {
		return nil, fmt.Errorf("campaign: canonical spec: %w", err)
	}
	out := make([]byte, 0, len(keyFormatVersion)+len(stratJSON)+len(cfgJSON)+32)
	out = append(out, keyFormatVersion...)
	out = append(out, "\nstrategy "...)
	out = append(out, stratJSON...)
	out = append(out, "\nconfig "...)
	out = append(out, cfgJSON...)
	out = append(out, '\n')
	return out, nil
}

// Key returns the run's content address: the hex SHA-256 of its canonical
// encoding. The determinism contract — (config, seed, faults.Plan) plus
// the strategy fully determine a run's canonical result bytes — is what
// makes this hash a valid cache key: equal keys imply byte-identical
// results, so a stored result can stand in for execution.
func (r RunSpec) Key() (string, error) {
	b, err := r.CanonicalBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// GroupKey returns the run's config-affinity group: the hash of its
// canonical encoding with the seed zeroed. Runs that differ only by seed
// share a group, which is exactly the set whose warm per-config state
// (snapshot caches, model scratch, page cache for the same fleet shape)
// a node reuses — the signal the cluster's config-affinity routing policy
// keys on. Group membership never affects result bytes; it is purely a
// placement hint.
func (r RunSpec) GroupKey() (string, error) {
	grouped := r
	grouped.Config.Seed = 0
	b, err := grouped.CanonicalBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]), nil
}

// Execute validates the spec, builds a fresh strategy instance, and runs
// the experiment to completion.
func (r RunSpec) Execute() (*core.Result, error) {
	strat, err := r.Strategy.Build()
	if err != nil {
		return nil, err
	}
	exp, err := core.New(r.Config, strat)
	if err != nil {
		return nil, fmt.Errorf("campaign: run %q: %w", r.Name, err)
	}
	res, err := exp.Run()
	if err != nil {
		return nil, fmt.Errorf("campaign: run %q: %w", r.Name, err)
	}
	return res, nil
}
