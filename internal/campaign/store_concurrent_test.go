package campaign

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// The store directory is the cluster's shared result tier: multiple
// worker processes publish into the same root. These tests pin down the
// two-writer contract: concurrent publishes of one key must converge to
// a single verified entry, never a torn one.

// TestStoreStagePathsUniqueAcrossHandles is the deterministic regression
// guard for the staging collision: two handles (two "processes") whose
// per-handle sequence counters both start at zero used to stage the same
// key into the same tmp path and interleave writes mid-publish.
func TestStoreStagePathsUniqueAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.stagePrefix == b.stagePrefix {
		t.Fatalf("two handles share staging prefix %q; concurrent Puts of one key would collide", a.stagePrefix)
	}
	if !strings.Contains(a.stagePrefix, "p") {
		t.Fatalf("staging prefix %q carries no process component", a.stagePrefix)
	}
}

// TestStoreConcurrentPutSameKeyConverges hammers the fsync+rename publish
// path from two store handles at once: every writer publishes the same
// content-addressed result, and the store must end with exactly one
// verified entry whose bytes match what any single writer produced.
func TestStoreConcurrentPutSameKeyConverges(t *testing.T) {
	dir := t.TempDir()
	handles := make([]*Store, 2)
	for i := range handles {
		s, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = s
	}
	spec := RunSpec{Name: "contend", Strategy: StrategySpec{Kind: "fedavg", Rounds: 2}}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	res := fakeResult(0.75)
	want, err := res.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}

	const writersPerHandle = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(handles)*writersPerHandle)
	for _, s := range handles {
		for w := 0; w < writersPerHandle; w++ {
			wg.Add(1)
			go func(s *Store) {
				defer wg.Done()
				errs <- s.Put(key, spec, fakeResult(0.75))
			}(s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("contended put failed: %v", err)
		}
	}

	// Every handle — and a fresh one, the "next process" — serves one
	// verified entry with the canonical bytes.
	fresh, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range append(handles, fresh) {
		got, err := s.CanonicalBytes(key)
		if err != nil {
			t.Fatalf("handle %d: entry missing or corrupt after contention: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("handle %d: served bytes differ from canonical", i)
		}
		if res, meta := s.Get(key); res == nil || meta.SHA256 == "" {
			t.Fatalf("handle %d: Get failed verification", i)
		}
		if n := s.Corruptions(); n != 0 {
			t.Fatalf("handle %d: %d corruption evictions under contention", i, n)
		}
	}
}

// TestStoreConcurrentPutDistinctKeys runs two handles publishing disjoint
// key sets concurrently — the common cluster steady state — and checks
// every entry lands verified.
func TestStoreConcurrentPutDistinctKeys(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	specFor := func(i int) RunSpec {
		return RunSpec{Name: "k", Strategy: StrategySpec{Kind: "fedavg", Rounds: i + 1}}
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int, s *Store) {
			defer wg.Done()
			spec := specFor(i)
			key, err := spec.Key()
			if err != nil {
				panic(err)
			}
			if err := s.Put(key, spec, fakeResult(float64(i))); err != nil {
				panic(err)
			}
		}(i, map[bool]*Store{true: a, false: b}[i%2 == 0])
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		key, err := specFor(i).Key()
		if err != nil {
			t.Fatal(err)
		}
		if !a.Has(key) || !b.Has(key) {
			t.Fatalf("key %d missing after concurrent distinct-key publish", i)
		}
	}
}
