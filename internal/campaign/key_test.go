package campaign

import (
	"bytes"
	"testing"

	"roadrunner/internal/faults"
)

func tinySpec(seed uint64) RunSpec {
	cfg := TinyConfig()
	cfg.Seed = seed
	return RunSpec{
		Name:     "fedavg/tiny",
		Strategy: StrategySpec{Kind: "fedavg", Rounds: 2},
		Config:   cfg,
	}
}

func TestRunKeyStable(t *testing.T) {
	a, err := tinySpec(1).Key()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinySpec(1).Key()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical specs hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", a)
	}
}

func TestRunKeyIgnoresLabelsAndEvalWorkers(t *testing.T) {
	base, err := tinySpec(1).Key()
	if err != nil {
		t.Fatal(err)
	}
	renamed := tinySpec(1)
	renamed.Name = "renamed/run"
	rk, err := renamed.Key()
	if err != nil {
		t.Fatal(err)
	}
	if rk != base {
		t.Fatal("run label changed the content address")
	}
	parallel := tinySpec(1)
	parallel.Config.EvalWorkers = 8
	pk, err := parallel.Key()
	if err != nil {
		t.Fatal(err)
	}
	if pk != base {
		t.Fatal("eval worker count changed the content address despite being result-invariant")
	}
}

func TestRunKeySeparatesRuns(t *testing.T) {
	base, err := tinySpec(1).Key()
	if err != nil {
		t.Fatal(err)
	}

	seeded := tinySpec(2)
	sk, err := seeded.Key()
	if err != nil {
		t.Fatal(err)
	}
	if sk == base {
		t.Fatal("seed change kept the same content address")
	}

	otherStrat := tinySpec(1)
	otherStrat.Strategy = StrategySpec{Kind: "opp", Rounds: 2}
	ok, err := otherStrat.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ok == base {
		t.Fatal("strategy change kept the same content address")
	}

	faulted := tinySpec(1)
	plan, err := faults.ScenarioPlan(faults.ScenarioBlackout, DefaultScenarioSpan)
	if err != nil {
		t.Fatal(err)
	}
	faulted.Config.Faults = &plan
	fk, err := faulted.Key()
	if err != nil {
		t.Fatal(err)
	}
	if fk == base {
		t.Fatal("fault plan kept the same content address")
	}
}

func TestCanonicalBytesVersioned(t *testing.T) {
	b, err := tinySpec(1).CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, []byte(keyFormatVersion)) {
		t.Fatalf("canonical spec bytes lack the format version prefix:\n%s", b[:80])
	}
}
