package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"roadrunner/internal/core"
)

// Task is one unit of scheduler work: a labelled run closure, optionally
// content-addressed. Key == "" marks the task uncacheable (used by the
// legacy repro fan-out shim, whose strategy factories are opaque closures
// that cannot be hashed); keyed tasks carry the RunSpec that produced the
// key so store entries are self-describing.
type Task struct {
	Name string
	Key  string
	Spec RunSpec
	Run  func() (*core.Result, error)
}

// TaskForSpec builds the canonical task for a run spec: keyed by the
// spec's content address and executing the spec on demand.
func TaskForSpec(spec RunSpec) (Task, error) {
	key, err := spec.Key()
	if err != nil {
		return Task{}, err
	}
	return Task{Name: spec.Name, Key: key, Spec: spec, Run: spec.Execute}, nil
}

// TaskResult is a task's outcome. Exactly one of Cached/Err/plain success
// holds: a cached result skipped execution entirely, an Err means every
// attempt failed, otherwise Result came from a fresh execution (and, when
// the scheduler has a store, was durably persisted before being reported).
type TaskResult struct {
	Name     string
	Key      string
	Result   *core.Result
	Cached   bool
	Attempts int
	Err      error
}

// Stats is a snapshot of the scheduler's lifetime accounting, the source
// of cmd/roadrunnerd's /metrics endpoint.
type Stats struct {
	// QueueDepth and Active describe the present moment: tasks waiting for
	// a worker and tasks currently executing.
	QueueDepth int
	Active     int
	// Executed counts fresh simulation executions (attempts that ran to
	// completion); Cached counts store hits that skipped execution; Failed
	// counts tasks whose every attempt failed; Retried counts extra
	// attempts after a failure.
	Executed uint64
	Cached   uint64
	Failed   uint64
	Retried  uint64
	// SimSeconds and EventsExecuted accumulate simulated seconds and
	// processed simulation events over fresh executions only — a warm
	// cache-hit campaign adds exactly zero to either. WallSeconds is the
	// host time those executions took; SimSeconds/WallSeconds is the
	// service's aggregate simsec/wallsec throughput.
	SimSeconds     float64
	EventsExecuted uint64
	WallSeconds    float64
}

// Options configures a Scheduler.
type Options struct {
	// Workers is the worker-pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Store, when set, is consulted before execution (hits skip the run)
	// and written after it (a run completes only once it is durable).
	Store *Store
	// MaxAttempts caps executions per task, retrying after failures
	// (including recovered panics and store-write errors); <= 0 means 2.
	MaxAttempts int
	// Backoff sleeps between attempts; nil selects an exponential default.
	// Tests inject a no-op to stay instant.
	Backoff func(attempt int)
}

// Scheduler executes tasks on a bounded worker pool with per-run panic
// isolation, retry-with-backoff, and content-addressed result caching. It
// is safe for concurrent use; one scheduler typically serves a whole
// process (cmd/roadrunnerd builds exactly one).
type Scheduler struct {
	workers     int
	maxAttempts int
	store       *Store
	backoff     func(int)

	mu    sync.Mutex
	stats Stats
}

// NewScheduler builds a scheduler from options.
func NewScheduler(opts Options) *Scheduler {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = 2
	}
	backoff := opts.Backoff
	if backoff == nil {
		backoff = defaultBackoff
	}
	return &Scheduler{
		workers:     workers,
		maxAttempts: attempts,
		store:       opts.Store,
		backoff:     backoff,
	}
}

// defaultBackoff sleeps 50ms << (attempt-1), capping at ~1s. Retry pacing
// is host-side service behaviour; no simulated quantity depends on it.
func defaultBackoff(attempt int) {
	d := 50 * time.Millisecond << (attempt - 1)
	if d > time.Second {
		d = time.Second
	}
	time.Sleep(d) //roadlint:allow wallclock retry backoff at the service edge; simulation results never depend on it
}

// Store returns the scheduler's result store (nil when caching is off).
func (s *Scheduler) Store() *Store { return s.store }

// Stats returns a consistent snapshot of the scheduler's accounting.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Execute runs the tasks to completion and returns outcomes in task
// order. The pool dimension is min(workers, len(tasks)); result order is
// deterministic regardless of completion order.
func (s *Scheduler) Execute(tasks []Task) []TaskResult {
	return s.execute(tasks, nil)
}

// runEvent is the lifecycle notification stream execute feeds observers:
// one Started per task that actually begins work, then exactly one of
// Cached, Done, or Failed.
type runEvent int

const (
	runStarted runEvent = iota
	runCached
	runDone
	runFailed
)

func (s *Scheduler) execute(tasks []Task, notify func(idx int, ev runEvent, tr *TaskResult)) []TaskResult {
	results := make([]TaskResult, len(tasks))
	if len(tasks) == 0 {
		return results
	}
	s.mu.Lock()
	s.stats.QueueDepth += len(tasks)
	s.mu.Unlock()

	workers := s.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				s.mu.Lock()
				s.stats.QueueDepth--
				s.stats.Active++
				s.mu.Unlock()
				if notify != nil {
					notify(idx, runStarted, nil)
				}
				tr := s.runTask(tasks[idx])
				s.mu.Lock()
				s.stats.Active--
				switch {
				case tr.Cached:
					s.stats.Cached++
				case tr.Err != nil:
					s.stats.Failed++
				}
				s.mu.Unlock()
				results[idx] = tr
				if notify != nil {
					switch {
					case tr.Cached:
						notify(idx, runCached, &tr)
					case tr.Err != nil:
						notify(idx, runFailed, &tr)
					default:
						notify(idx, runDone, &tr)
					}
				}
			}
		}()
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// runTask executes one task: store lookup, then up to maxAttempts
// isolated executions with backoff between them.
func (s *Scheduler) runTask(t Task) TaskResult {
	out := TaskResult{Name: t.Name, Key: t.Key}
	if t.Run == nil {
		out.Err = fmt.Errorf("campaign: task %q has no run function", t.Name)
		return out
	}
	if t.Key != "" && s.store != nil {
		if res, _ := s.store.Get(t.Key); res != nil {
			out.Result = res
			out.Cached = true
			return out
		}
	}
	for attempt := 1; attempt <= s.maxAttempts; attempt++ {
		if attempt > 1 {
			s.mu.Lock()
			s.stats.Retried++
			s.mu.Unlock()
			s.backoff(attempt - 1)
		}
		out.Attempts = attempt
		res, err := runIsolated(t)
		if err == nil {
			s.mu.Lock()
			s.stats.Executed++
			s.stats.SimSeconds += float64(res.End)
			s.stats.EventsExecuted += res.EventsProcessed
			s.stats.WallSeconds += res.Wall.Seconds()
			s.mu.Unlock()
			// Persistence is part of the run: a keyed task only succeeds
			// once its result is durable, so a resumed campaign can treat
			// "in store" as "done".
			if t.Key != "" && s.store != nil {
				err = s.store.Put(t.Key, t.Spec, res)
			}
			if err == nil {
				out.Result = res
				out.Err = nil
				return out
			}
		}
		out.Err = err
	}
	return out
}

// runIsolated executes the task's run closure, converting a panic into an
// error so one faulty run cannot take down the scheduler (or the service
// it backs).
func runIsolated(t Task) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: run %q panicked: %v", t.Name, r)
		}
	}()
	res, err = t.Run()
	if err == nil && res == nil {
		err = fmt.Errorf("campaign: run %q returned no result", t.Name)
	}
	return res, err
}
