package campaign

import (
	"testing"
)

func TestNewCampaignRejects(t *testing.T) {
	if _, err := NewCampaign("", tinyManifest()); err == nil {
		t.Fatal("empty campaign id accepted")
	}
	bad := tinyManifest()
	bad.Strategies = nil
	if _, err := NewCampaign("c0001-bad", bad); err == nil {
		t.Fatal("invalid manifest accepted")
	}
}

func TestCampaignLifecycleAndEvents(t *testing.T) {
	c, err := NewCampaign("c0001-events", tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Total != 2 || st.Queued != 2 || st.Done {
		t.Fatalf("initial status: %+v", st)
	}

	events, cancel := c.Subscribe()
	defer cancel()

	s := instantScheduler(t, Options{Workers: 2})
	results, err := s.RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range results {
		if tr.Err != nil {
			t.Fatalf("run %d failed: %v", i, tr.Err)
		}
	}

	select {
	case <-c.Done():
	default:
		t.Fatal("Done channel not closed after RunCampaign returned")
	}

	var runEvents, terminalRunEvents, campaignEvents int
	for ev := range events {
		switch ev.Type {
		case "run":
			runEvents++
			if ev.Run.State.Terminal() {
				terminalRunEvents++
			}
		case "campaign":
			campaignEvents++
			if !ev.Status.Done || ev.Status.Completed != 2 {
				t.Fatalf("terminal campaign event: %+v", ev.Status)
			}
		}
	}
	if terminalRunEvents != 2 {
		t.Fatalf("saw %d terminal run events, want 2 (of %d run events)", terminalRunEvents, runEvents)
	}
	if campaignEvents != 1 {
		t.Fatalf("saw %d campaign events, want 1", campaignEvents)
	}

	// A late subscriber still observes the terminal snapshot on a closed
	// channel.
	late, lateCancel := c.Subscribe()
	defer lateCancel()
	ev, ok := <-late
	if !ok || ev.Type != "campaign" || !ev.Status.Done {
		t.Fatalf("late subscription: ok=%v ev=%+v", ok, ev)
	}
	if _, ok := <-late; ok {
		t.Fatal("late subscription channel not closed after terminal event")
	}

	st = c.Status()
	if !st.Done || st.Completed != 2 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("final status: %+v", st)
	}
	for _, r := range st.Runs {
		if r.State != RunDone || r.EndS <= 0 {
			t.Fatalf("final run status: %+v", r)
		}
	}
}

// TestStalledSubscriberStillGetsTerminalEvent is the slow-consumer
// regression test: a subscriber that never drains overflows its buffer and
// drops intermediate events, but must still find the terminal campaign
// snapshot as the last event before close — a dropped run event must never
// cost a client campaign completion.
func TestStalledSubscriberStillGetsTerminalEvent(t *testing.T) {
	c, err := NewCampaign("c0001-stall", tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := c.Subscribe()
	defer cancel()

	// Far more transitions than the buffer holds, with the subscriber
	// deliberately stalled (nothing reads the channel yet).
	for i := 0; i < 4*subscriberBuffer; i++ {
		c.update(i%2, runStarted, nil)
		c.update(i%2, runDone, nil)
	}
	c.finish()

	var last Event
	n := 0
	for ev := range events {
		last = ev
		n++
	}
	if n > subscriberBuffer {
		t.Fatalf("stalled subscriber buffered %d events, cap is %d", n, subscriberBuffer)
	}
	if last.Type != "campaign" || last.Status == nil || !last.Status.Done {
		t.Fatalf("last event before close is %+v, want the terminal campaign snapshot", last)
	}
	if last.Status.Completed != 2 {
		t.Fatalf("terminal snapshot: %+v", last.Status)
	}
}

// TestLossySubscriberResyncsWithSnapshot verifies the gap-healing path: a
// subscriber that dropped events receives a full status snapshot before the
// next incremental event, so a missed transition (e.g. a resume flipping a
// run to cached) can never leave the client's view permanently stale.
func TestLossySubscriberResyncsWithSnapshot(t *testing.T) {
	c, err := NewCampaign("c0001-resync", tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := c.Subscribe()
	defer cancel()

	// Overflow the buffer so at least one event drops and the subscriber
	// is marked lossy.
	for i := 0; i < 2*subscriberBuffer; i++ {
		c.update(0, runStarted, nil)
	}
	// Stall over: drain everything buffered so far.
	for len(events) > 0 {
		<-events
	}
	// The transition the stalled client must not miss.
	c.update(1, runCached, nil)

	ev := <-events
	if ev.Type != "campaign" || ev.Status == nil {
		t.Fatalf("first post-stall event is %+v, want a campaign resync snapshot", ev)
	}
	if got := ev.Status.Runs[1].State; got != RunCached {
		t.Fatalf("resync snapshot shows run 1 as %q, want %q", got, RunCached)
	}
	ev = <-events
	if ev.Type != "run" || ev.Run == nil || ev.Run.State != RunCached {
		t.Fatalf("incremental event after resync: %+v", ev)
	}
}
