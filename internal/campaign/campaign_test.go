package campaign

import (
	"testing"
)

func TestNewCampaignRejects(t *testing.T) {
	if _, err := NewCampaign("", tinyManifest()); err == nil {
		t.Fatal("empty campaign id accepted")
	}
	bad := tinyManifest()
	bad.Strategies = nil
	if _, err := NewCampaign("c0001-bad", bad); err == nil {
		t.Fatal("invalid manifest accepted")
	}
}

func TestCampaignLifecycleAndEvents(t *testing.T) {
	c, err := NewCampaign("c0001-events", tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Total != 2 || st.Queued != 2 || st.Done {
		t.Fatalf("initial status: %+v", st)
	}

	events, cancel := c.Subscribe()
	defer cancel()

	s := instantScheduler(t, Options{Workers: 2})
	results, err := s.RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range results {
		if tr.Err != nil {
			t.Fatalf("run %d failed: %v", i, tr.Err)
		}
	}

	select {
	case <-c.Done():
	default:
		t.Fatal("Done channel not closed after RunCampaign returned")
	}

	var runEvents, terminalRunEvents, campaignEvents int
	for ev := range events {
		switch ev.Type {
		case "run":
			runEvents++
			if ev.Run.State.Terminal() {
				terminalRunEvents++
			}
		case "campaign":
			campaignEvents++
			if !ev.Status.Done || ev.Status.Completed != 2 {
				t.Fatalf("terminal campaign event: %+v", ev.Status)
			}
		}
	}
	if terminalRunEvents != 2 {
		t.Fatalf("saw %d terminal run events, want 2 (of %d run events)", terminalRunEvents, runEvents)
	}
	if campaignEvents != 1 {
		t.Fatalf("saw %d campaign events, want 1", campaignEvents)
	}

	// A late subscriber still observes the terminal snapshot on a closed
	// channel.
	late, lateCancel := c.Subscribe()
	defer lateCancel()
	ev, ok := <-late
	if !ok || ev.Type != "campaign" || !ev.Status.Done {
		t.Fatalf("late subscription: ok=%v ev=%+v", ok, ev)
	}
	if _, ok := <-late; ok {
		t.Fatal("late subscription channel not closed after terminal event")
	}

	st = c.Status()
	if !st.Done || st.Completed != 2 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("final status: %+v", st)
	}
	for _, r := range st.Runs {
		if r.State != RunDone || r.EndS <= 0 {
			t.Fatalf("final run status: %+v", r)
		}
	}
}
