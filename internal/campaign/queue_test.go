package campaign

import (
	"errors"
	"path/filepath"
	"testing"
)

// queueSpecs expands the tiny manifest once per test for queue fodder.
func queueSpecs(t *testing.T) []RunSpec {
	t.Helper()
	specs, err := tinyManifest().Expand()
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func enqueueAll(t *testing.T, q *Queue, specs []RunSpec) []string {
	t.Helper()
	refs := make([]string, len(specs))
	for i, spec := range specs {
		key, err := spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = "c1/" + key
		if err := q.Enqueue(refs[i], key, spec); err != nil {
			t.Fatal(err)
		}
	}
	return refs
}

func TestQueueClaimStartCompleteLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q.Close() }()
	specs := queueSpecs(t)
	refs := enqueueAll(t, q, specs)
	if p, l := q.Depth(); p != len(refs) || l != 0 {
		t.Fatalf("depth after enqueue: pending=%d leased=%d", p, l)
	}
	// Re-enqueueing a known ref is a no-op.
	if err := q.Enqueue(refs[0], "x", specs[0]); err != nil {
		t.Fatal(err)
	}
	if p, _ := q.Depth(); p != len(refs) {
		t.Fatalf("duplicate enqueue changed depth to %d", p)
	}

	lease, spec, err := q.Claim(refs[0], "w1", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != specs[0].Name || lease.Node != "w1" || lease.Expires != 5 {
		t.Fatalf("claim: %+v spec %q", lease, spec.Name)
	}
	if _, _, err := q.Claim(refs[0], "w2", 0, 5); !errors.Is(err, ErrNotPending) {
		t.Fatalf("double claim err = %v, want ErrNotPending", err)
	}
	if _, err := q.Start(lease.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease.ID, RunDone); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease.ID, RunDone); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("duplicate complete err = %v, want ErrStaleLease", err)
	}
	if st, ok := q.Done(refs[0]); !ok || st != RunDone {
		t.Fatalf("done state: %v %v", st, ok)
	}
	if _, err := q.Complete(lease.ID+100, RunDone); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("unknown lease complete err = %v", err)
	}
}

// TestQueueCompleteRequiresStart enforces the documented invariant that
// Complete is accepted only from the lease that started the run: a
// claimed-but-unstarted lease cannot report an outcome.
func TestQueueCompleteRequiresStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q.Close() }()
	refs := enqueueAll(t, q, queueSpecs(t))
	lease, _, err := q.Claim(refs[0], "w1", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease.ID, RunDone); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("complete before start err = %v, want ErrStaleLease", err)
	}
	if st, ok := q.Done(refs[0]); ok {
		t.Fatalf("unstarted complete recorded terminal state %v", st)
	}
	// The lease is still live and proceeds normally through the gate.
	if _, err := q.Start(lease.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease.ID, RunDone); err != nil {
		t.Fatal(err)
	}
}

// TestQueueRetryClearsTerminalState walks the resume-retry path: a ref
// with a terminal state becomes claimable again under a fresh lease, the
// retry survives log replay, and retrying a non-terminal ref is
// rejected.
func TestQueueRetryClearsTerminalState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	specs := queueSpecs(t)
	refs := enqueueAll(t, q, specs)
	if err := q.Retry(refs[0], "k", specs[0]); err == nil {
		t.Fatal("retry of a pending ref succeeded")
	}
	lease, _, err := q.Claim(refs[0], "w1", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Start(lease.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease.ID, RunFailed); err != nil {
		t.Fatal(err)
	}
	key := refs[0][len("c1/"):]
	if err := q.Retry(refs[0], key, specs[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Done(refs[0]); ok {
		t.Fatal("retry left the ref terminal")
	}
	// Re-enqueueing the retried ref stays a no-op (it is already pending).
	if err := q.Enqueue(refs[0], key, specs[0]); err != nil {
		t.Fatal(err)
	}
	pending := q.Pending()
	count := 0
	for _, it := range pending {
		if it.Ref == refs[0] {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("retried ref pending %d times, want 1", count)
	}
	_ = q.Close()

	// Recovery replays the retry: the ref must come back pending, not done.
	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q2.Close() }()
	if _, ok := q2.Done(refs[0]); ok {
		t.Fatal("replay resurrected the retried ref's terminal state")
	}
	lease2, spec, err := q2.Claim(refs[0], "w2", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Strategy.Kind == "" {
		t.Fatal("retried spec lost its strategy across replay")
	}
	if _, err := q2.Start(lease2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Complete(lease2.ID, RunDone); err != nil {
		t.Fatal(err)
	}
	if st, ok := q2.Done(refs[0]); !ok || st != RunDone {
		t.Fatalf("retried ref did not re-complete: %v %v", st, ok)
	}
}

func TestQueueLeaseExpiryRequeuesAtFront(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q.Close() }()
	refs := enqueueAll(t, q, queueSpecs(t))

	lease, _, err := q.Claim(refs[0], "w1", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if exp := q.ExpireLeases(2); len(exp) != 0 {
		t.Fatalf("premature expiry: %+v", exp)
	}
	// Heartbeat extension pushes expiry out.
	q.Extend("w1", 2, 3)
	if exp := q.ExpireLeases(3); len(exp) != 0 {
		t.Fatalf("extended lease expired: %+v", exp)
	}
	exp := q.ExpireLeases(5)
	if len(exp) != 1 || exp[0].ID != lease.ID {
		t.Fatalf("expiry: %+v", exp)
	}
	// The dead node's run is back at the front of the queue.
	pending := q.Pending()
	if len(pending) == 0 || pending[0].Ref != refs[0] {
		t.Fatalf("expired run not requeued at front: %+v", pending)
	}
	// The old lease is stale at both gates.
	if _, err := q.Start(lease.ID); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale start err = %v", err)
	}
	if _, err := q.Complete(lease.ID, RunDone); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale complete err = %v", err)
	}
	// Re-claim under a fresh lease works.
	lease2, _, err := q.Claim(refs[0], "w2", 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lease2.ID == lease.ID {
		t.Fatal("lease IDs reused across grants")
	}
}

func TestQueueStealOnlyUnstartedForeignLeases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q.Close() }()
	refs := enqueueAll(t, q, queueSpecs(t))

	lease, _, err := q.Claim(refs[0], "w1", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Self-steal and stealing an unknown ref are rejected.
	if _, _, err := q.Steal(refs[0], "w1", 1, 10); !errors.Is(err, ErrNotStealable) {
		t.Fatalf("self-steal err = %v", err)
	}
	if _, _, err := q.Steal("c1/none", "w2", 1, 10); !errors.Is(err, ErrNotStealable) {
		t.Fatalf("unknown steal err = %v", err)
	}
	stolen, spec, err := q.Steal(refs[0], "w2", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stolen.Node != "w2" || spec.Name == "" {
		t.Fatalf("steal grant: %+v %q", stolen, spec.Name)
	}
	// The victim's lease is dead: it cannot start or complete the run.
	if _, err := q.Start(lease.ID); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("victim start err = %v", err)
	}
	// The thief proceeds normally.
	if _, err := q.Start(stolen.ID); err != nil {
		t.Fatal(err)
	}
	// A started lease is not stealable back.
	if _, _, err := q.Steal(refs[0], "w3", 2, 10); !errors.Is(err, ErrNotStealable) {
		t.Fatalf("steal of started lease err = %v", err)
	}
	if _, err := q.Complete(stolen.ID, RunDone); err != nil {
		t.Fatal(err)
	}
}

func TestQueueRecoveryRequeuesUnfinishedClaims(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	refs := enqueueAll(t, q, queueSpecs(t))
	lease, _, err := q.Claim(refs[0], "w1", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Start(lease.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease.ID, RunDone); err != nil {
		t.Fatal(err)
	}
	// Claim the second run but never complete it: the coordinator "dies".
	if len(refs) < 2 {
		t.Fatal("need at least 2 runs")
	}
	if _, _, err := q.Claim(refs[1], "w1", 1, 10); err != nil {
		t.Fatal(err)
	}
	_ = q.Close()

	// Recovery: completed runs stay done, the orphaned claim is pending
	// again, and lease IDs never go backwards.
	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q2.Close() }()
	if st, ok := q2.Done(refs[0]); !ok || st != RunDone {
		t.Fatalf("completed run lost on recovery: %v %v", st, ok)
	}
	pending := q2.Pending()
	if len(pending) != 1 || pending[0].Ref != refs[1] {
		t.Fatalf("orphaned claim not requeued: %+v", pending)
	}
	lease2, _, err := q2.Claim(refs[1], "w2", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lease2.ID <= lease.ID {
		t.Fatalf("recovered lease ID %d not beyond pre-crash %d", lease2.ID, lease.ID)
	}
	// The recovered spec still executes: it round-tripped through JSON.
	if pending[0].Spec.Strategy.Kind == "" {
		t.Fatal("recovered spec lost its strategy")
	}
}

func TestQueueLogIsAnEvidenceTrail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q.Close() }()
	refs := enqueueAll(t, q, queueSpecs(t))
	lease, _, err := q.Claim(refs[0], "w1", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	q.ExpireLeases(3)
	lease2, _, err := q.Claim(refs[0], "w2", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Start(lease2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease2.ID, RunDone); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadQueueLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, r := range recs {
		if r.Ref == refs[0] {
			ops = append(ops, r.Op)
		}
	}
	want := []string{"enqueue", "claim", "expire", "claim", "start", "complete"}
	if len(ops) != len(want) {
		t.Fatalf("ops for ref: %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %q, want %q (all: %v)", i, ops[i], want[i], ops)
		}
	}
	_ = lease
}
