package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// Snapshot compaction bounds restart-replay cost. A snapshot captures
// the queue's *replay-equivalent* state — every known ref in
// enqueue/retry order with its latest key+spec, the done map, and the
// next lease ID — NOT the live pending order: live leases are
// invalidated on recovery anyway, so a leased ref is recorded exactly
// like a pending one and returns to pending on load, which is precisely
// what full-log replay would produce.
//
// Crash safety is a two-step generation protocol:
//
//  1. write queue.snap.jsonl.tmp carrying generation G+1, fsync, rename
//     over queue.snap.jsonl — the snapshot publishes atomically;
//  2. rotate the log: write a fresh log whose first record is
//     {"op":"gen","gen":G+1} via the same tmp+fsync+rename dance.
//
// On open, the snapshot generation is compared to the log's gen record:
// equal means snapshot+tail; snapshot ahead means the crash hit between
// steps 1 and 2, the stale log is wholly contained in the snapshot, and
// recovery finishes the rotation; log ahead (or rotated log without its
// snapshot) is real corruption and refuses to open.

// QueueSnapshot is a parsed queue compaction snapshot.
type QueueSnapshot struct {
	// Gen is the generation this snapshot was compacted at; the log tail
	// that extends it carries the same generation in its gen record.
	Gen uint64
	// Next is the next lease ID to grant — preserved so IDs stay
	// never-reused across compactions.
	Next LeaseID
	// Items holds every known ref in enqueue/retry order with its latest
	// key and spec.
	Items []QueueItem
	// Done maps terminal refs to their terminal state.
	Done map[string]RunState
}

// ReadQueueSnapshot parses a queue snapshot file. Unlike the log, a
// snapshot is published atomically, so *any* malformation — a bad line,
// a missing snap-end trailer, a ref-count mismatch — is corruption and
// errors. A missing file returns an error wrapping os.ErrNotExist.
func ReadQueueSnapshot(path string) (*QueueSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	snap := &QueueSnapshot{Done: make(map[string]RunState)}
	var begun, ended bool
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if ended {
			return nil, fmt.Errorf("snapshot has records after snap-end (line %d)", lineNo)
		}
		var rec QueueRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("snapshot line %d: %w", lineNo, err)
		}
		switch rec.Op {
		case "snap-begin":
			if begun {
				return nil, fmt.Errorf("snapshot line %d: duplicate snap-begin", lineNo)
			}
			begun = true
			snap.Gen = rec.Gen
			snap.Next = rec.Next
		case "snap-ref":
			if !begun {
				return nil, fmt.Errorf("snapshot line %d: snap-ref before snap-begin", lineNo)
			}
			if rec.Spec == nil {
				return nil, fmt.Errorf("snapshot line %d: snap-ref without spec", lineNo)
			}
			snap.Items = append(snap.Items, QueueItem{Ref: rec.Ref, Key: rec.Key, Spec: *rec.Spec})
			if rec.State != "" {
				snap.Done[rec.Ref] = rec.State
			}
		case "snap-end":
			if !begun {
				return nil, fmt.Errorf("snapshot line %d: snap-end before snap-begin", lineNo)
			}
			if rec.Count != len(snap.Items) {
				return nil, fmt.Errorf("snapshot trailer counts %d refs, read %d", rec.Count, len(snap.Items))
			}
			ended = true
		default:
			return nil, fmt.Errorf("snapshot line %d: unexpected op %q", lineNo, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if !begun || !ended {
		return nil, fmt.Errorf("snapshot is truncated (begin=%v end=%v)", begun, ended)
	}
	return snap, nil
}

// applySnapshot seeds recovery state from a parsed snapshot.
func (q *Queue) applySnapshot(s *QueueSnapshot) {
	for _, it := range s.Items {
		q.recordKnownLocked(it)
	}
	for ref, st := range s.Done {
		q.done[ref] = st
	}
	q.next = s.Next
	q.stats.UsedSnapshot = true
	q.stats.SnapshotRefs = len(s.Items)
}

// Gen reports the queue's current log generation — 0 until the first
// compaction.
func (q *Queue) Gen() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.gen
}

// CompactFailures counts threshold-triggered compactions that failed.
// The triggering operation itself still succeeded — compaction is an
// optimization, and a failed one only means the next open replays more
// log than it had to.
func (q *Queue) CompactFailures() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.compactFailures
}

// Compact forces a snapshot compaction now, regardless of threshold.
func (q *Queue) Compact() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.compactLocked()
}

// maybeCompactLocked runs a compaction once the log tail has accumulated
// enough per-ref entries. Called at the end of every mutating verb —
// never mid-verb, so the snapshot always captures a fully applied state.
func (q *Queue) maybeCompactLocked() {
	if q.compactEvery <= 0 || q.tailEntries < q.compactEvery {
		return
	}
	if err := q.compactLocked(); err != nil {
		q.compactFailures++
	}
}

// compactLocked snapshots the current state at generation+1 and rotates
// the log. If the rotation fails after the snapshot published, the
// rotation stays owed (pendingRotate) and every subsequent append
// retries it first — appending to the superseded log would write records
// that recovery discards.
func (q *Queue) compactLocked() error {
	gen := q.gen + 1
	if err := q.writeSnapshotLocked(gen); err != nil {
		return fmt.Errorf("campaign: queue snapshot: %w", err)
	}
	q.gen = gen
	q.pendingRotate = gen
	if err := q.rotateLogLocked(gen); err != nil {
		return fmt.Errorf("campaign: queue log rotation: %w", err)
	}
	q.tailEntries = 0
	return nil
}

// writeSnapshotLocked publishes a snapshot at gen via tmp+fsync+rename,
// the store's atomic-publish idiom.
func (q *Queue) writeSnapshotLocked(gen uint64) error {
	live := 0
	for _, ref := range q.knownOrder {
		if ref != "" {
			live++
		}
	}
	tmp := q.snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	writeRec := func(rec QueueRecord) error {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		return w.WriteByte('\n')
	}
	werr := writeRec(QueueRecord{Op: "snap-begin", Gen: gen, Next: q.next, Count: live})
	for _, ref := range q.knownOrder {
		if werr != nil {
			break
		}
		if ref == "" {
			continue
		}
		it := q.itemOf[ref]
		spec := it.Spec
		werr = writeRec(QueueRecord{Op: "snap-ref", Ref: it.Ref, Key: it.Key, State: q.done[ref], Spec: &spec})
	}
	if werr == nil {
		werr = writeRec(QueueRecord{Op: "snap-end", Count: live})
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return werr
	}
	return os.Rename(tmp, q.snapPath)
}

// rotateLogLocked replaces the log with a fresh one whose sole record is
// the generation marker, via tmp+fsync+rename. The append handle is
// re-opened onto the new log when one was open.
func (q *Queue) rotateLogLocked(gen uint64) error {
	data, err := json.Marshal(QueueRecord{Op: "gen", Gen: gen})
	if err != nil {
		return err
	}
	tmp := q.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(data, '\n'))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return werr
	}
	if q.f != nil {
		_ = q.f.Close()
		q.f = nil
		if err := os.Rename(tmp, q.path); err != nil {
			return err
		}
		nf, err := os.OpenFile(q.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		q.f = nf
	} else if err := os.Rename(tmp, q.path); err != nil {
		return err
	}
	q.pendingRotate = 0
	return nil
}
