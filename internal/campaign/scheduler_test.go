package campaign

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
)

// fakeResult builds a small synthetic result that round-trips through the
// store's rehydration path (metrics JSON + meta sidecar).
func fakeResult(accuracy float64) *core.Result {
	rec := metrics.NewRecorder()
	_ = rec.Record("accuracy", 0, accuracy/2)
	_ = rec.Record("accuracy", 10, accuracy)
	rec.Add("rounds", 2)
	return &core.Result{
		Metrics:         rec,
		End:             sim.Time(10),
		FinalAccuracy:   accuracy,
		EventsProcessed: 42,
	}
}

// instantScheduler builds a scheduler whose backoff does not sleep.
func instantScheduler(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	if opts.Backoff == nil {
		opts.Backoff = func(int) {}
	}
	return NewScheduler(opts)
}

func TestSchedulerPreservesTaskOrder(t *testing.T) {
	s := instantScheduler(t, Options{Workers: 4})
	const n = 16
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		acc := float64(i)
		tasks[i] = Task{
			Name: fmt.Sprintf("run-%d", i),
			Run:  func() (*core.Result, error) { return fakeResult(acc), nil },
		}
	}
	results := s.Execute(tasks)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, tr := range results {
		if tr.Err != nil {
			t.Fatalf("task %d failed: %v", i, tr.Err)
		}
		if tr.Name != fmt.Sprintf("run-%d", i) || tr.Result.FinalAccuracy != float64(i) {
			t.Fatalf("result %d out of order: %+v", i, tr)
		}
	}
	st := s.Stats()
	if st.Executed != n || st.QueueDepth != 0 || st.Active != 0 {
		t.Fatalf("stats after execute: %+v", st)
	}
	if st.SimSeconds != 10*n || st.EventsExecuted != 42*n {
		t.Fatalf("throughput accounting wrong: %+v", st)
	}
}

func TestSchedulerIsolatesPanics(t *testing.T) {
	s := instantScheduler(t, Options{Workers: 2, MaxAttempts: 1})
	tasks := []Task{
		{Name: "ok", Run: func() (*core.Result, error) { return fakeResult(0.5), nil }},
		{Name: "boom", Run: func() (*core.Result, error) { panic("synthetic failure") }},
		{Name: "nil", Run: func() (*core.Result, error) { return nil, nil }},
	}
	results := s.Execute(tasks)
	if results[0].Err != nil {
		t.Fatalf("healthy task failed: %v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", results[1].Err)
	}
	if results[2].Err == nil {
		t.Fatal("nil result accepted as success")
	}
	if st := s.Stats(); st.Failed != 2 {
		t.Fatalf("failed count = %d, want 2", st.Failed)
	}
}

func TestSchedulerRetriesWithBackoff(t *testing.T) {
	var backoffs []int
	var mu sync.Mutex
	s := NewScheduler(Options{
		Workers:     1,
		MaxAttempts: 3,
		Backoff: func(attempt int) {
			mu.Lock()
			backoffs = append(backoffs, attempt)
			mu.Unlock()
		},
	})
	var calls atomic.Int64
	flaky := Task{Name: "flaky", Run: func() (*core.Result, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return fakeResult(0.7), nil
	}}
	results := s.Execute([]Task{flaky})
	if results[0].Err != nil {
		t.Fatalf("flaky task failed after retries: %v", results[0].Err)
	}
	if results[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", results[0].Attempts)
	}
	if len(backoffs) != 2 || backoffs[0] != 1 || backoffs[1] != 2 {
		t.Fatalf("backoff attempts = %v, want [1 2]", backoffs)
	}
	if st := s.Stats(); st.Retried != 2 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}

	var hopeless atomic.Int64
	results = s.Execute([]Task{{Name: "hopeless", Run: func() (*core.Result, error) {
		hopeless.Add(1)
		return nil, errors.New("permanent")
	}}})
	if results[0].Err == nil {
		t.Fatal("permanently failing task reported success")
	}
	if got := hopeless.Load(); got != 3 {
		t.Fatalf("permanently failing task ran %d times, want 3", got)
	}
}

func TestSchedulerCacheHitSkipsExecution(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := instantScheduler(t, Options{Workers: 2, Store: store})

	spec := tinySpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	task := Task{Name: spec.Name, Key: key, Spec: spec, Run: func() (*core.Result, error) {
		executions.Add(1)
		return fakeResult(0.9), nil
	}}

	cold := s.Execute([]Task{task})
	if cold[0].Err != nil || cold[0].Cached {
		t.Fatalf("cold run: %+v", cold[0])
	}
	if executions.Load() != 1 {
		t.Fatalf("cold run executed %d times", executions.Load())
	}
	if !store.Has(key) {
		t.Fatal("cold run result not persisted")
	}

	warm := s.Execute([]Task{task})
	if warm[0].Err != nil {
		t.Fatalf("warm run failed: %v", warm[0].Err)
	}
	if !warm[0].Cached {
		t.Fatal("second execution of an identical spec was not a cache hit")
	}
	if executions.Load() != 1 {
		t.Fatalf("cache hit still executed the run (%d executions)", executions.Load())
	}
	if warm[0].Result.FinalAccuracy != cold[0].Result.FinalAccuracy {
		t.Fatal("cached result differs from the cold one")
	}
	st := s.Stats()
	if st.Executed != 1 || st.Cached != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The warm pass must add zero simulated work.
	if st.SimSeconds != 10 || st.EventsExecuted != 42 {
		t.Fatalf("cache hit accrued simulated work: %+v", st)
	}
}

func TestSchedulerStorePutFailureFailsRun(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := instantScheduler(t, Options{Workers: 1, MaxAttempts: 2, Store: store})

	spec := tinySpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	// Consume the single allowed put so the scheduler's own put fails.
	other := tinySpec(99)
	otherKey, err := other.Key()
	if err != nil {
		t.Fatal(err)
	}
	store.FailAfterPuts(1)
	if err := store.Put(otherKey, other, fakeResult(0.1)); err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	task := Task{Name: spec.Name, Key: key, Spec: spec, Run: func() (*core.Result, error) {
		executions.Add(1)
		return fakeResult(0.9), nil
	}}
	results := s.Execute([]Task{task})
	if results[0].Err == nil {
		t.Fatal("run reported success despite persistence failing")
	}
	if got := executions.Load(); got != 2 {
		t.Fatalf("run attempted %d times, want 2 (persistence is part of the run)", got)
	}
}

func TestSchedulerUncacheableTaskSkipsStore(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := instantScheduler(t, Options{Workers: 1, Store: store})
	var executions atomic.Int64
	task := Task{Name: "opaque", Run: func() (*core.Result, error) {
		executions.Add(1)
		return fakeResult(0.3), nil
	}}
	for i := 0; i < 2; i++ {
		results := s.Execute([]Task{task})
		if results[0].Err != nil || results[0].Cached {
			t.Fatalf("pass %d: %+v", i, results[0])
		}
	}
	if executions.Load() != 2 {
		t.Fatalf("uncacheable task executed %d times, want 2", executions.Load())
	}
}
