package campaign

import (
	"encoding/json"
	"fmt"
)

// Batched verbs amortize the queue's durability cost: a whole batch of
// enqueues/claims/starts/completes shares one journal append and one
// fsync, where the single-ref verbs pay one each. Results carry per-ref
// error slots — a stale lease or already-claimed ref in a batch rejects
// only its own slot, never its siblings. The only whole-batch failure is
// the journal write itself, in which case nothing was applied.

// maxBatchRecordEntries chunks a batched journal append into records of
// at most this many entries, keeping every log line far below the replay
// scanner's 16 MB ceiling even with spec-carrying entries. All chunks of
// one append share a single fsync.
const maxBatchRecordEntries = 512

// ClaimGrant is one ref's slot in a ClaimBatch result.
type ClaimGrant struct {
	Ref   string
	Lease Lease
	Spec  RunSpec
	Err   error
}

// LeaseResult is one lease's slot in a StartBatch or CompleteBatch
// result.
type LeaseResult struct {
	ID    LeaseID
	Lease Lease
	Err   error
}

// Completion pairs a lease with its terminal outcome for CompleteBatch.
type Completion struct {
	ID    LeaseID
	State RunState
}

// appendBatchLocked journals one batched verb: the entries are chunked
// into records, written, and made durable with a single fsync.
func (q *Queue) appendBatchLocked(op, node string, tick Tick, entries []BatchEntry) error {
	if err := q.ensureLogLocked(); err != nil {
		return err
	}
	for start := 0; start < len(entries); start += maxBatchRecordEntries {
		end := min(start+maxBatchRecordEntries, len(entries))
		data, err := json.Marshal(QueueRecord{Op: op, Node: node, Tick: tick, Batch: entries[start:end]})
		if err != nil {
			return fmt.Errorf("campaign: queue log: %w", err)
		}
		if _, err := q.f.Write(append(data, '\n')); err != nil {
			return fmt.Errorf("campaign: queue log: %w", err)
		}
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("campaign: queue log: %w", err)
	}
	q.tailEntries += len(entries)
	return nil
}

// EnqueueBatch adds a batch of runs under one fsync. Like Enqueue, known
// refs (including duplicates within the batch) are skipped, so
// re-submitting a manifest is idempotent.
func (q *Queue) EnqueueBatch(items []QueueItem) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	fresh := make([]QueueItem, 0, len(items))
	seen := make(map[string]bool, len(items))
	entries := make([]BatchEntry, 0, len(items))
	for _, it := range items {
		if seen[it.Ref] {
			continue
		}
		if _, known := q.itemOf[it.Ref]; known {
			continue
		}
		seen[it.Ref] = true
		spec := it.Spec
		entries = append(entries, BatchEntry{Ref: it.Ref, Key: it.Key, Spec: &spec})
		fresh = append(fresh, it)
	}
	if len(fresh) == 0 {
		return nil
	}
	if err := q.appendBatchLocked("enqueue-batch", "", 0, entries); err != nil {
		return err
	}
	for _, it := range fresh {
		q.recordKnownLocked(it)
		q.slots[it.Ref] = q.pending.pushBack(it)
	}
	q.maybeCompactLocked()
	return nil
}

// ClaimBatch grants leases on a batch of pending refs to node under one
// journal append. Refs that are not pending — or repeated within the
// batch — fail only their own slot with ErrNotPending. The returned
// slice is positionally aligned with refs.
func (q *Queue) ClaimBatch(refs []string, node string, now, ttl Tick) ([]ClaimGrant, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]ClaimGrant, len(refs))
	granted := make([]*Lease, 0, len(refs))
	grantIdx := make([]int, 0, len(refs))
	entries := make([]BatchEntry, 0, len(refs))
	seen := make(map[string]bool, len(refs))
	id := q.next
	for i, ref := range refs {
		out[i].Ref = ref
		nd, ok := q.slots[ref]
		if !ok || seen[ref] {
			out[i].Err = fmt.Errorf("%w: %s", ErrNotPending, ref)
			continue
		}
		seen[ref] = true
		item := nd.item
		l := &Lease{ID: id, Ref: item.Ref, Key: item.Key, Node: node, Granted: now, Expires: now + ttl, runSpec: item.Spec}
		id++
		entries = append(entries, BatchEntry{Ref: item.Ref, Key: item.Key, Lease: l.ID})
		granted = append(granted, l)
		grantIdx = append(grantIdx, i)
	}
	if len(granted) == 0 {
		return out, nil
	}
	if err := q.appendBatchLocked("claim-batch", node, now, entries); err != nil {
		return nil, err
	}
	q.next = id
	for k, l := range granted {
		nd := q.slots[l.Ref]
		q.pending.remove(nd)
		delete(q.slots, l.Ref)
		q.leases[l.Ref] = l
		q.byID[l.ID] = l
		out[grantIdx[k]].Lease = *l
		out[grantIdx[k]].Spec = l.runSpec
	}
	q.maybeCompactLocked()
	return out, nil
}

// StartBatch passes a batch of leases through the execution gate under
// one journal append. Stale leases fail only their own slot with
// ErrStaleLease. The returned slice is positionally aligned with ids.
func (q *Queue) StartBatch(ids []LeaseID) ([]LeaseResult, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]LeaseResult, len(ids))
	started := make([]*Lease, 0, len(ids))
	startIdx := make([]int, 0, len(ids))
	entries := make([]BatchEntry, 0, len(ids))
	for i, id := range ids {
		out[i].ID = id
		l, ok := q.byID[id]
		if !ok {
			out[i].Err = fmt.Errorf("%w: lease %d", ErrStaleLease, id)
			continue
		}
		entries = append(entries, BatchEntry{Ref: l.Ref, Key: l.Key, Lease: id})
		started = append(started, l)
		startIdx = append(startIdx, i)
	}
	if len(started) == 0 {
		return out, nil
	}
	if err := q.appendBatchLocked("start-batch", "", 0, entries); err != nil {
		return nil, err
	}
	for k, l := range started {
		l.Started = true
		out[startIdx[k]].Lease = *l
	}
	q.maybeCompactLocked()
	return out, nil
}

// CompleteBatch finishes a batch of started leases under one journal
// append. Stale, never-started, or within-batch-duplicated leases fail
// only their own slot. The returned slice is positionally aligned with
// completions.
func (q *Queue) CompleteBatch(completions []Completion) ([]LeaseResult, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]LeaseResult, len(completions))
	finished := make([]*Lease, 0, len(completions))
	states := make([]RunState, 0, len(completions))
	finIdx := make([]int, 0, len(completions))
	entries := make([]BatchEntry, 0, len(completions))
	seen := make(map[LeaseID]bool, len(completions))
	for i, c := range completions {
		out[i].ID = c.ID
		if seen[c.ID] {
			out[i].Err = fmt.Errorf("%w: lease %d completed earlier in batch", ErrStaleLease, c.ID)
			continue
		}
		l, err := q.completableLocked(c.ID, c.State)
		if err != nil {
			out[i].Err = err
			continue
		}
		seen[c.ID] = true
		entries = append(entries, BatchEntry{Ref: l.Ref, Key: l.Key, Lease: c.ID, State: c.State})
		finished = append(finished, l)
		states = append(states, c.State)
		finIdx = append(finIdx, i)
	}
	if len(finished) == 0 {
		return out, nil
	}
	if err := q.appendBatchLocked("complete-batch", "", 0, entries); err != nil {
		return nil, err
	}
	for k, l := range finished {
		out[finIdx[k]].Lease = *l
		q.finishLeaseLocked(l, states[k])
	}
	q.maybeCompactLocked()
	return out, nil
}
