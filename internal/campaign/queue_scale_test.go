package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// --- replay bugfix regressions ---------------------------------------------

// corruptLine overwrites the n-th (0-based) line of a JSONL file with junk
// that does not parse, preserving the line structure around it.
func corruptLine(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if n < 0 {
		n = len(lines) + n
	}
	if n >= len(lines) {
		t.Fatalf("log has %d lines, wanted line %d", len(lines), n)
	}
	lines[n] = `{"op":"claim","ref":` // unparseable
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// seedQueueLog drives a queue through a few verbs and returns the log path.
func seedQueueLog(t *testing.T) (string, []string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	specs := queueSpecs(t)
	refs := enqueueAll(t, q, specs)
	lease, _, err := q.Claim(refs[0], "w1", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Start(lease.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease.ID, RunDone); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	return path, refs
}

func TestQueueReplayRejectsMidLogCorruption(t *testing.T) {
	path, _ := seedQueueLog(t)
	// Corrupt a record in the middle: records follow it, so this is not a
	// torn trailing write and replay must refuse rather than silently
	// dropping the completion that follows.
	corruptLine(t, path, 1)
	if _, err := OpenQueue(path); err == nil {
		t.Fatal("OpenQueue accepted a corrupt mid-log record")
	} else if !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := ReadQueueLog(path); err == nil {
		t.Fatal("ReadQueueLog accepted a corrupt mid-log record")
	}
}

func TestQueueReplayToleratesTornFinalRecord(t *testing.T) {
	path, refs := seedQueueLog(t)
	// A malformed final line is the crash signature of an interrupted
	// append and is dropped: here the completion is lost, so the ref
	// returns to pending.
	corruptLine(t, path, -1)
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatalf("torn trailing write should be tolerated: %v", err)
	}
	defer func() { _ = q.Close() }()
	if _, done := q.Done(refs[0]); done {
		t.Fatal("dropped completion still visible")
	}
	if p, _ := q.Depth(); p != len(refs) {
		t.Fatalf("pending = %d, want %d (claimed ref re-queued)", p, len(refs))
	}
}

func TestQueueReplaySurfacesOversizedRecord(t *testing.T) {
	path, _ := seedQueueLog(t)
	// One >16 MB line exceeds the replay scanner's buffer. Pre-fix this
	// was swallowed and silently truncated replay; it must be an error.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, (1<<24)+64)
	for i := range huge {
		huge[i] = 'x'
	}
	if _, err := f.Write(append(huge, '\n')); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenQueue(path); err == nil {
		t.Fatal("OpenQueue swallowed an oversized record")
	}
	if _, err := ReadQueueLog(path); err == nil {
		t.Fatal("ReadQueueLog swallowed an oversized record")
	}
}

func TestQueueReplayHonorsRetrySpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	specs := queueSpecs(t)
	if len(specs) < 2 {
		t.Fatal("need two distinct specs")
	}
	keyA, _ := specs[0].Key()
	keyB, _ := specs[1].Key()
	if err := q.Enqueue("c1/run", keyA, specs[0]); err != nil {
		t.Fatal(err)
	}
	lease, _, err := q.Claim("c1/run", "w1", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Start(lease.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Complete(lease.ID, RunFailed); err != nil {
		t.Fatal(err)
	}
	// Retry re-queues the ref with a *different* key+spec (the resume
	// path re-derives specs, which may legitimately change).
	if err := q.Retry("c1/run", keyB, specs[1]); err != nil {
		t.Fatal(err)
	}
	livePending := q.Pending()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Pre-fix, replay kept the enqueue-time keyA/specs[0] for known refs,
	// diverging from the pre-crash queue. Replayed state must match it.
	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q2.Close() }()
	replayed := q2.Pending()
	if !reflect.DeepEqual(livePending, replayed) {
		t.Fatalf("replayed pending diverged from live queue:\nlive:     %+v\nreplayed: %+v", livePending, replayed)
	}
	if len(replayed) != 1 || replayed[0].Key != keyB {
		t.Fatalf("replayed item key = %q, want retry-time key %q", replayed[0].Key, keyB)
	}
}

// --- batched verbs ----------------------------------------------------------

func batchItems(t *testing.T, specs []RunSpec) []QueueItem {
	t.Helper()
	items := make([]QueueItem, len(specs))
	for i, spec := range specs {
		key, err := spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		items[i] = QueueItem{Ref: "c1/" + key, Key: key, Spec: spec}
	}
	return items
}

func TestQueueBatchLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q.Close() }()
	items := batchItems(t, queueSpecs(t))
	if err := q.EnqueueBatch(items); err != nil {
		t.Fatal(err)
	}
	// Idempotent like Enqueue: a re-submitted manifest adds nothing.
	if err := q.EnqueueBatch(items); err != nil {
		t.Fatal(err)
	}
	if p, _ := q.Depth(); p != len(items) {
		t.Fatalf("pending = %d, want %d", p, len(items))
	}

	refs := make([]string, len(items))
	for i, it := range items {
		refs[i] = it.Ref
	}
	grants, err := q.ClaimBatch(refs, "w1", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]LeaseID, 0, len(grants))
	for i, g := range grants {
		if g.Err != nil {
			t.Fatalf("grant %d: %v", i, g.Err)
		}
		if g.Lease.Node != "w1" || g.Lease.Ref != refs[i] {
			t.Fatalf("grant %d lease: %+v", i, g.Lease)
		}
		if len(ids) > 0 && g.Lease.ID <= ids[len(ids)-1] {
			t.Fatalf("lease IDs not strictly increasing: %v then %v", ids, g.Lease.ID)
		}
		ids = append(ids, g.Lease.ID)
	}
	if p, l := q.Depth(); p != 0 || l != len(items) {
		t.Fatalf("after batch claim: pending=%d leased=%d", p, l)
	}

	started, err := q.StartBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	comps := make([]Completion, len(ids))
	for i, r := range started {
		if r.Err != nil {
			t.Fatalf("start %d: %v", i, r.Err)
		}
		comps[i] = Completion{ID: ids[i], State: RunDone}
	}
	results, err := q.CompleteBatch(comps)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("complete %d: %v", i, r.Err)
		}
	}
	for _, ref := range refs {
		if st, ok := q.Done(ref); !ok || st != RunDone {
			t.Fatalf("ref %s not done: %v %v", ref, st, ok)
		}
	}

	// The whole lifecycle journaled one batched record per verb (plus the
	// no-op re-enqueue), not one per ref.
	recs, err := ReadQueueLog(path)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Op]++
		if len(r.Batch) != len(items) {
			t.Fatalf("%s record carries %d entries, want %d", r.Op, len(r.Batch), len(items))
		}
	}
	want := map[string]int{"enqueue-batch": 1, "claim-batch": 1, "start-batch": 1, "complete-batch": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("record counts = %v, want %v", counts, want)
	}
}

func TestQueueBatchPartialFailureDoesNotPoisonSiblings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q.Close() }()
	items := batchItems(t, queueSpecs(t))
	if err := q.EnqueueBatch(items); err != nil {
		t.Fatal(err)
	}

	// Claim: an unknown ref and an in-batch duplicate fail their own
	// slots; the valid refs around them are granted.
	refs := []string{items[0].Ref, "c1/ghost", items[1].Ref, items[0].Ref}
	grants, err := q.ClaimBatch(refs, "w1", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if grants[0].Err != nil || grants[2].Err != nil {
		t.Fatalf("valid slots failed: %v / %v", grants[0].Err, grants[2].Err)
	}
	if !errors.Is(grants[1].Err, ErrNotPending) || !errors.Is(grants[3].Err, ErrNotPending) {
		t.Fatalf("invalid slots: %v / %v", grants[1].Err, grants[3].Err)
	}

	// Start: a stale id fails only its slot.
	startRes, err := q.StartBatch([]LeaseID{grants[0].Lease.ID, 9999, grants[2].Lease.ID})
	if err != nil {
		t.Fatal(err)
	}
	if startRes[0].Err != nil || startRes[2].Err != nil {
		t.Fatalf("valid starts failed: %v / %v", startRes[0].Err, startRes[2].Err)
	}
	if !errors.Is(startRes[1].Err, ErrStaleLease) {
		t.Fatalf("stale start: %v", startRes[1].Err)
	}

	// Complete: a never-started lease (none here), a duplicate within the
	// batch, and a stale id all fail per-slot.
	comps := []Completion{
		{ID: grants[0].Lease.ID, State: RunDone},
		{ID: 9999, State: RunDone},
		{ID: grants[0].Lease.ID, State: RunFailed},
		{ID: grants[2].Lease.ID, State: RunFailed},
	}
	res, err := q.CompleteBatch(comps)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[3].Err != nil {
		t.Fatalf("valid completes failed: %v / %v", res[0].Err, res[3].Err)
	}
	if !errors.Is(res[1].Err, ErrStaleLease) || !errors.Is(res[2].Err, ErrStaleLease) {
		t.Fatalf("invalid completes: %v / %v", res[1].Err, res[2].Err)
	}
	if st, _ := q.Done(items[0].Ref); st != RunDone {
		t.Fatalf("duplicate completion overwrote state: %v", st)
	}
	if st, _ := q.Done(items[1].Ref); st != RunFailed {
		t.Fatalf("item1 state: %v", st)
	}

	// The batch survives a restart: replayed state matches.
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q2.Close() }()
	if st, _ := q2.Done(items[0].Ref); st != RunDone {
		t.Fatalf("replayed state: %v", st)
	}
	if p, l := q2.Depth(); p != len(items)-2 || l != 0 {
		t.Fatalf("replayed depth: pending=%d leased=%d", p, l)
	}
}

// --- snapshot compaction ----------------------------------------------------

// driveQueue applies an identical verb sequence to q: enqueue all items,
// complete the first half, fail-and-retry one, leave one claimed.
func driveQueue(t *testing.T, q *Queue, items []QueueItem) {
	t.Helper()
	if err := q.EnqueueBatch(items); err != nil {
		t.Fatal(err)
	}
	half := len(items) / 2
	for i := 0; i < half; i++ {
		lease, _, err := q.Claim(items[i].Ref, "w1", Tick(i), 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Start(lease.ID); err != nil {
			t.Fatal(err)
		}
		state := RunDone
		if i == 0 {
			state = RunFailed
		}
		if _, err := q.Complete(lease.ID, state); err != nil {
			t.Fatal(err)
		}
	}
	// Retry the failure with a swapped key/spec (moves it to the back).
	if err := q.Retry(items[0].Ref, items[1].Key, items[1].Spec); err != nil {
		t.Fatal(err)
	}
	// Leave one ref claimed-but-unfinished: recovery must re-queue it.
	if _, _, err := q.Claim(items[half].Ref, "w2", 20, 5); err != nil {
		t.Fatal(err)
	}
}

// queueObservable compares everything a replayed queue exposes.
func queueObservable(t *testing.T, q *Queue, items []QueueItem) (pending []QueueItem, done map[string]RunState) {
	t.Helper()
	done = map[string]RunState{}
	for _, it := range items {
		if st, ok := q.Done(it.Ref); ok {
			done[it.Ref] = st
		}
	}
	return q.Pending(), done
}

func TestQueueSnapshotTailReplayMatchesFullReplay(t *testing.T) {
	items := batchItems(t, queueSpecs(t))

	// Reference: full-log replay, compaction disabled.
	refPath := filepath.Join(t.TempDir(), "queue.jsonl")
	refQ, err := OpenQueueWithOptions(refPath, QueueOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	driveQueue(t, refQ, items)
	if err := refQ.Close(); err != nil {
		t.Fatal(err)
	}
	refQ2, err := OpenQueue(refPath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = refQ2.Close() }()

	// Snapshotting queue: compact aggressively mid-sequence.
	snapPath := filepath.Join(t.TempDir(), "queue.jsonl")
	snapQ, err := OpenQueueWithOptions(snapPath, QueueOptions{CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	driveQueue(t, snapQ, items)
	if snapQ.Gen() == 0 {
		t.Fatal("compaction never triggered")
	}
	if n := snapQ.CompactFailures(); n != 0 {
		t.Fatalf("%d compactions failed", n)
	}
	if err := snapQ.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(queueSnapshotPath(snapPath)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	snapQ2, err := OpenQueueWithOptions(snapPath, QueueOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = snapQ2.Close() }()

	stats := snapQ2.ReplayStats()
	if !stats.UsedSnapshot {
		t.Fatal("reopen did not use the snapshot")
	}
	refStats := refQ2.ReplayStats()
	if stats.LogEntries >= refStats.LogEntries {
		t.Fatalf("snapshot+tail replayed %d entries, full replay %d — tail not smaller", stats.LogEntries, refStats.LogEntries)
	}

	refPending, refDone := queueObservable(t, refQ2, items)
	snapPending, snapDone := queueObservable(t, snapQ2, items)
	if !reflect.DeepEqual(refPending, snapPending) {
		t.Fatalf("pending diverged:\nfull: %+v\nsnap: %+v", refPending, snapPending)
	}
	if !reflect.DeepEqual(refDone, snapDone) {
		t.Fatalf("done diverged:\nfull: %v\nsnap: %v", refDone, snapDone)
	}

	// Lease IDs continue from the same point — never reused across
	// compactions.
	l1, _, err := refQ2.Claim(refPending[0].Ref, "w9", 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := snapQ2.Claim(snapPending[0].Ref, "w9", 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l1.ID != l2.ID {
		t.Fatalf("next lease ID diverged: full=%d snap=%d", l1.ID, l2.ID)
	}
}

func TestQueueRecoversFromCrashMidCompaction(t *testing.T) {
	items := batchItems(t, queueSpecs(t))
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueueWithOptions(path, QueueOptions{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	driveQueue(t, q, items)
	wantPending, wantDone := queueObservable(t, q, items)
	// But the claimed-unfinished ref comes back pending after recovery:
	// fold it into the expectation at the front (expiry/recovery order).
	half := len(items) / 2
	wantPending = append([]QueueItem{items[half]}, wantPending...)

	// Simulate the crash window: snapshot published, log not yet rotated.
	q.mu.Lock()
	if err := q.writeSnapshotLocked(q.gen + 1); err != nil {
		q.mu.Unlock()
		t.Fatal(err)
	}
	q.mu.Unlock()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatalf("recovery from mid-compaction crash failed: %v", err)
	}
	defer func() { _ = q2.Close() }()
	if !q2.ReplayStats().UsedSnapshot {
		t.Fatal("recovery ignored the published snapshot")
	}
	if q2.Gen() == 0 {
		t.Fatal("recovery did not adopt the snapshot generation")
	}
	gotPending, gotDone := queueObservable(t, q2, items)
	if !reflect.DeepEqual(wantPending, gotPending) {
		t.Fatalf("pending after recovery:\nwant: %+v\ngot:  %+v", wantPending, gotPending)
	}
	if !reflect.DeepEqual(wantDone, gotDone) {
		t.Fatalf("done after recovery:\nwant: %v\ngot:  %v", wantDone, gotDone)
	}
	// Recovery finished the rotation: the log now opens with the gen
	// record matching the snapshot.
	recs, err := ReadQueueLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Op != "gen" || recs[0].Gen != q2.Gen() {
		t.Fatalf("rotated log head: %+v", recs[:min(1, len(recs))])
	}
}

func TestQueueRefusesRotatedLogWithoutSnapshot(t *testing.T) {
	items := batchItems(t, queueSpecs(t))
	path := filepath.Join(t.TempDir(), "queue.jsonl")
	q, err := OpenQueueWithOptions(path, QueueOptions{CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	driveQueue(t, q, items)
	if q.Gen() == 0 {
		t.Fatal("compaction never triggered")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(queueSnapshotPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenQueue(path); err == nil {
		t.Fatal("opened a rotated log whose snapshot is gone — compacted history silently lost")
	}
}
