package campaign

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// executeSpec runs the spec fresh, failing the test on error.
func executeSpec(t *testing.T, spec RunSpec) ([]byte, *TaskResult) {
	t.Helper()
	res, err := spec.Execute()
	if err != nil {
		t.Fatalf("execute %q: %v", spec.Name, err)
	}
	canonical, err := res.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	return canonical, &TaskResult{Name: spec.Name, Result: res}
}

func TestStoreCacheHitByteIdenticalToFreshRun(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	fresh, tr := executeSpec(t, spec)
	if err := store.Put(key, spec, tr.Result); err != nil {
		t.Fatal(err)
	}

	served, err := store.CanonicalBytes(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, fresh) {
		t.Fatalf("stored canonical bytes differ from the fresh run:\n%s\nvs\n%s", served, fresh)
	}

	res, meta := store.Get(key)
	if res == nil || meta == nil {
		t.Fatal("store miss for a just-written key")
	}
	rehydrated, err := res.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rehydrated, fresh) {
		t.Fatal("rehydrated result re-encodes to different canonical bytes")
	}
	if meta.Key != key || meta.Name != spec.Name {
		t.Fatalf("meta mismatch: %+v", meta)
	}

	// A second fresh execution of the same spec must also match — the
	// determinism contract that makes the key a valid cache address.
	again, _ := executeSpec(t, spec)
	if !bytes.Equal(again, fresh) {
		t.Fatal("two fresh executions of one spec disagree; content addressing is unsound")
	}
}

func TestStoreCorruptEntryEvictedNotServed(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	_, tr := executeSpec(t, spec)
	if err := store.Put(key, spec, tr.Result); err != nil {
		t.Fatal(err)
	}

	// Flip a byte of the stored canonical result.
	path := filepath.Join(store.Root(), key, "result.canonical")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := store.CanonicalBytes(key); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt entry served (err=%v)", err)
	}
	if store.Corruptions() != 1 {
		t.Fatalf("corruptions = %d, want 1", store.Corruptions())
	}
	if store.Has(key) {
		t.Fatal("corrupt entry not evicted")
	}
	if res, _ := store.Get(key); res != nil {
		t.Fatal("corrupt entry rehydrated")
	}
}

func TestStoreMetaCorruptionEvicted(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	_, tr := executeSpec(t, spec)
	if err := store.Put(key, spec, tr.Result); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store.Root(), key, "meta.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if res, _ := store.Get(key); res != nil {
		t.Fatal("entry with corrupt meta rehydrated")
	}
	if store.Has(key) {
		t.Fatal("entry with corrupt meta not evicted")
	}
}

func TestStorePutStagesAtomically(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	_, tr := executeSpec(t, spec)
	if err := store.Put(key, spec, tr.Result); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(store.Root(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("tmp staging dir not empty after publish: %d entries", len(entries))
	}
	// Re-putting the identical content is a no-op, not an error.
	if err := store.Put(key, spec, tr.Result); err != nil {
		t.Fatalf("idempotent re-put failed: %v", err)
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../../etc/passwd", "ABC", "zz"} {
		if store.Has(key) {
			t.Fatalf("malformed key %q reported present", key)
		}
		if _, err := store.CanonicalBytes(key); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("malformed key %q: err = %v", key, err)
		}
		if err := store.Put(key, RunSpec{}, nil); err == nil {
			t.Fatalf("malformed key %q accepted for put", key)
		}
	}
}

func TestStoreCrashPoint(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	spec2 := tinySpec(2)
	key2, err := spec2.Key()
	if err != nil {
		t.Fatal(err)
	}
	_, tr := executeSpec(t, spec)

	store.FailAfterPuts(1)
	if err := store.Put(key, spec, tr.Result); err != nil {
		t.Fatalf("put before the crash point failed: %v", err)
	}
	if err := store.Put(key2, spec2, tr.Result); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("put past the crash point: err = %v, want ErrInjectedCrash", err)
	}
	if !store.Has(key) || store.Has(key2) {
		t.Fatal("crash point did not preserve exactly the pre-crash entries")
	}
}

// TestStoreSurvivesNonFiniteRecordingAttempts is the store-level regression
// test for the metrics non-finite guard. Strict JSON has no encoding for
// NaN or ±Inf, so before Record rejected (and Add dropped) non-finite
// values, a single bad sample made the stored result.json unserializable or
// non-round-trippable and silently broke the store's re-encoding-equality
// check. Now the poison can't enter the recorder at all: a result whose
// instrumentation attempted non-finite recordings still puts, gets, and
// re-encodes byte-identically.
func TestStoreSurvivesNonFiniteRecordingAttempts(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	fresh, tr := executeSpec(t, spec)

	// Simulate buggy instrumentation: every non-finite recording attempt
	// must bounce off without mutating the result.
	if err := tr.Result.Metrics.Record("poison_series", 0, math.NaN()); err == nil {
		t.Fatal("recorder accepted a NaN sample")
	}
	if err := tr.Result.Metrics.Record("poison_series", 0, math.Inf(1)); err == nil {
		t.Fatal("recorder accepted a +Inf sample")
	}
	tr.Result.Metrics.Add("poison_counter", math.Inf(-1))
	afterPoison, err := tr.Result.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(afterPoison, fresh) {
		t.Fatal("rejected non-finite recordings still changed the canonical result")
	}

	if err := store.Put(key, spec, tr.Result); err != nil {
		t.Fatal(err)
	}
	res, _ := store.Get(key)
	if res == nil {
		t.Fatal("store miss for a just-written key")
	}
	rehydrated, err := res.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rehydrated, fresh) {
		t.Fatal("rehydrated result re-encodes to different canonical bytes")
	}
}
