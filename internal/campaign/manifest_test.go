package campaign

import (
	"strings"
	"testing"

	"roadrunner/internal/faults"
)

func tinyManifest() Manifest {
	return Manifest{
		Name:       "smoke",
		Env:        EnvTiny,
		Rounds:     2,
		Strategies: []StrategySpec{{Kind: "fedavg"}, {Kind: "opp"}},
		Seeds:      []uint64{1},
	}
}

func TestManifestExpandCrossProduct(t *testing.T) {
	m := Manifest{
		Name:       "grid",
		Env:        EnvTiny,
		Rounds:     2,
		Strategies: []StrategySpec{{Kind: "fedavg"}, {Kind: "opp"}},
		Seeds:      []uint64{1, 2, 3},
		Scenarios:  []string{ScenarioFaultFree, faults.ScenarioBlackout},
		Overrides: []Override{
			{Name: "base"},
			{Name: "dense", V2XRangeM: ptrF(400)},
		},
	}
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2 * 2; len(specs) != want {
		t.Fatalf("expanded %d specs, want %d", len(specs), want)
	}
	seen := make(map[string]bool)
	for _, spec := range specs {
		if seen[spec.Name] {
			t.Fatalf("duplicate run name %q", spec.Name)
		}
		seen[spec.Name] = true
		if strings.Contains(spec.Name, faults.ScenarioBlackout) {
			if spec.Config.Faults == nil || spec.Config.Faults.Empty() {
				t.Fatalf("run %q: blackout scenario expanded without a fault plan", spec.Name)
			}
		} else if spec.Config.Faults != nil {
			t.Fatalf("run %q: fault-free scenario carries a fault plan", spec.Name)
		}
		if strings.Contains(spec.Name, "dense") && spec.Config.Comm.V2X.RangeM != 400 {
			t.Fatalf("run %q: override not applied (range %v)", spec.Name, spec.Config.Comm.V2X.RangeM)
		}
	}
}

func TestManifestExpandDeterministic(t *testing.T) {
	m := tinyManifest()
	a, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("expansion sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ka, err := a[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		kb, err := b[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		if a[i].Name != b[i].Name || ka != kb {
			t.Fatalf("expansion %d differs: %q/%s vs %q/%s", i, a[i].Name, ka, b[i].Name, kb)
		}
	}
}

func TestManifestValidateRejects(t *testing.T) {
	cases := map[string]func(*Manifest){
		"no name":         func(m *Manifest) { m.Name = "" },
		"no strategies":   func(m *Manifest) { m.Strategies = nil },
		"no seeds":        func(m *Manifest) { m.Seeds = nil },
		"bad env":         func(m *Manifest) { m.Env = "mars" },
		"bad strategy":    func(m *Manifest) { m.Strategies = []StrategySpec{{Kind: "nope"}} },
		"bad scenario":    func(m *Manifest) { m.Scenarios = []string{"earthquake"} },
		"negative rounds": func(m *Manifest) { m.Rounds = -1 },
		"unnamed override": func(m *Manifest) {
			m.Overrides = []Override{{V2XRangeM: ptrF(100)}}
		},
		"negative eval workers": func(m *Manifest) { m.EvalWorkers = -2 },
	}
	for name, mutate := range cases {
		m := tinyManifest()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Fatalf("%s: manifest accepted", name)
		}
	}
	good := tinyManifest()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

func TestStrategySpecBuildKnownKinds(t *testing.T) {
	for kind, want := range map[string]string{
		"fedavg":      "fedavg",
		"base":        "fedavg",
		"opp":         "opportunistic",
		"gossip":      "gossip",
		"centralized": "centralized",
		"hybrid":      "hybrid",
		"rsu":         "rsu-assisted",
	} {
		s, err := StrategySpec{Kind: kind, Rounds: 3}.Build()
		if err != nil {
			t.Fatalf("build %q: %v", kind, err)
		}
		if s.Name() != want {
			t.Fatalf("build %q: name %q, want %q", kind, s.Name(), want)
		}
	}
	if _, err := (StrategySpec{Kind: "nope"}).Build(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (StrategySpec{Kind: "fedavg", Rounds: -1}).Build(); err == nil {
		t.Fatal("negative rounds accepted")
	}
}

func ptrF(v float64) *float64 { return &v }
func ptrI(v int) *int         { return &v }
