package conformance

import (
	"bytes"
	"testing"

	"roadrunner/internal/core"
	"roadrunner/internal/faults"
)

// runTraceCell is runCell's observability sibling: one (strategy, scenario)
// run with explicit tracing and evaluation-parallelism settings.
func runTraceCell(t *testing.T, c Case, scenario string, traceOn bool, evalWorkers int) *core.Result {
	t.Helper()
	cfg := Config(matrixSeed)
	cfg.Trace = traceOn
	cfg.EvalWorkers = evalWorkers
	if scenario != ScenarioFaultFree {
		plan, err := faults.ScenarioPlan(scenario, ScenarioHorizon)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.Name, scenario, err)
		}
		cfg.Faults = &plan
	}
	strat, err := c.New()
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	exp, err := core.New(cfg, strat)
	if err != nil {
		t.Fatalf("%s/%s: %v", c.Name, scenario, err)
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatalf("%s/%s: %v", c.Name, scenario, err)
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatalf("%s/%s: %v", c.Name, scenario, err)
	}
	return res
}

// traceCases is the subset of the matrix the trace cells run over: the
// paper's two headline strategies, which together exercise every span kind
// the tracer emits (rounds, training, evaluation, aggregation, encounter
// exchanges, plus fault windows under a faulted scenario).
func traceCases(t *testing.T) []Case {
	t.Helper()
	var out []Case
	for _, c := range Cases() {
		if c.Name == "fedavg" || c.Name == "opportunistic" {
			out = append(out, c)
		}
	}
	if len(out) != 2 {
		t.Fatalf("trace cells found %d of 2 headline strategies", len(out))
	}
	return out
}

// TestTraceByteIdentityAcrossEvalWorkers is the observability cell of the
// conformance matrix: the span trace is part of the reproducibility
// contract, so the same (config, seed, plan) triple must yield a
// byte-identical canonical trace at any evaluation worker count — tracing
// observes the virtual clock, not the host's scheduling.
func TestTraceByteIdentityAcrossEvalWorkers(t *testing.T) {
	for _, c := range traceCases(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, sc := range []string{ScenarioFaultFree, faults.ScenarioMixed} {
				serial := runTraceCell(t, c, sc, true, 1)
				parallel := runTraceCell(t, c, sc, true, 4)
				if serial.Trace == nil || parallel.Trace == nil {
					t.Fatalf("%s: traced run returned nil trace", sc)
				}
				if len(serial.Trace.Spans) == 0 {
					t.Fatalf("%s: traced run recorded no spans", sc)
				}
				a, err := serial.Trace.CanonicalBytes()
				if err != nil {
					t.Fatalf("%s: canonical trace: %v", sc, err)
				}
				b, err := parallel.Trace.CanonicalBytes()
				if err != nil {
					t.Fatalf("%s: canonical trace: %v", sc, err)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("%s: trace differs between EvalWorkers=1 and 4 (%d vs %d bytes)",
						sc, len(a), len(b))
				}
			}
		})
	}
}

// TestTraceDisabledLeavesRunUntouched asserts the other half of the
// observability contract: with Config.Trace off the run carries no trace at
// all, and with it on the recorded results are byte-identical to the
// untraced run — the tracer is a pure observer on the simulated clock.
// (The zero-allocation property of the disabled path is pinned down by
// internal/trace's TestDisabledTracerZeroAllocs.)
func TestTraceDisabledLeavesRunUntouched(t *testing.T) {
	for _, c := range traceCases(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			off := runTraceCell(t, c, faults.ScenarioMixed, false, 0)
			if off.Trace != nil {
				t.Fatalf("untraced run carries a trace with %d spans", len(off.Trace.Spans))
			}
			on := runTraceCell(t, c, faults.ScenarioMixed, true, 0)
			if on.Trace == nil || len(on.Trace.Spans) == 0 {
				t.Fatal("traced run recorded no spans")
			}
			a, err := off.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			b, err := on.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatal("enabling tracing changed the run's canonical result bytes")
			}
		})
	}
}
