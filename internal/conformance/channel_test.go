package conformance

import (
	"bytes"
	"testing"

	"roadrunner/internal/channel"
	"roadrunner/internal/core"
	"roadrunner/internal/faults"
	"roadrunner/internal/sim"
)

// runChannelCell executes one (strategy, channel-model) cell twice with the
// same seed, asserting the same contract as runCell: completion, framework
// invariants, and same-seed byte-identity.
func runChannelCell(t *testing.T, c Case, m ChannelModel) []byte {
	t.Helper()
	canonical := func(label string) []byte {
		res, err := RunChannel(c, m, ScenarioFaultFree, matrixSeed, 0)
		if err != nil {
			t.Fatalf("%s/%s%s: %v", c.Name, m.Name, label, err)
		}
		if err := CheckInvariants(res); err != nil {
			t.Fatalf("%s/%s%s: %v", c.Name, m.Name, label, err)
		}
		b, err := res.CanonicalBytes()
		if err != nil {
			t.Fatalf("%s/%s%s: canonical encode: %v", c.Name, m.Name, label, err)
		}
		return b
	}
	a := canonical("")
	if b := canonical(" (repeat)"); !bytes.Equal(a, b) {
		t.Fatalf("%s/%s: same-seed runs are not byte-identical", c.Name, m.Name)
	}
	return a
}

// channelCases is the strategy subset the channel axis runs against: the
// paper's two headline strategies plus the pure-V2X gossip strategy, so the
// axis exercises V2C-heavy, mixed, and V2X-only traffic shapes.
func channelCases(t *testing.T) []Case {
	t.Helper()
	var out []Case
	for _, c := range Cases() {
		switch c.Name {
		case "fedavg", "opportunistic", "gossip":
			out = append(out, c)
		}
	}
	if len(out) != 3 {
		t.Fatalf("channel axis found %d of its 3 strategies", len(out))
	}
	return out
}

// TestChannelModelMatrix runs the strategy x channel-model grid: every cell
// completes, upholds the invariants, reproduces byte-identically at the
// same seed — and every non-analytic model observably perturbs the run
// relative to the analytic baseline (a model that changes nothing is
// mis-wired, not conservative).
func TestChannelModelMatrix(t *testing.T) {
	models := ChannelModels()
	if len(models) < 4 {
		t.Fatalf("channel axis has %d models, want >= 4", len(models))
	}
	for _, c := range channelCases(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var baseline []byte
			for _, m := range models {
				m := m
				t.Run(m.Name, func(t *testing.T) {
					got := runChannelCell(t, c, m)
					if m.Config == nil {
						baseline = got
						return
					}
					if baseline == nil {
						t.Fatal("analytic baseline must run first in the model list")
					}
					if bytes.Equal(got, baseline) {
						t.Errorf("%s/%s: run is byte-identical to the analytic baseline; model had no effect", c.Name, m.Name)
					}
				})
			}
		})
	}
}

// TestChannelWorkerInvariance asserts that parallel evaluation stays
// result-invariant under every channel model: EvalWorkers 1 and 4 must
// produce byte-identical results, or the channel streams have leaked into
// a worker-count-dependent order.
func TestChannelWorkerInvariance(t *testing.T) {
	for _, c := range channelCases(t) {
		if c.Name == "gossip" {
			continue // fedavg + opportunistic cover serial and parallel eval paths
		}
		for _, m := range ChannelModels() {
			serial, err := RunChannel(c, m, ScenarioFaultFree, matrixSeed, 1)
			if err != nil {
				t.Fatalf("%s/%s workers=1: %v", c.Name, m.Name, err)
			}
			parallel, err := RunChannel(c, m, ScenarioFaultFree, matrixSeed, 4)
			if err != nil {
				t.Fatalf("%s/%s workers=4: %v", c.Name, m.Name, err)
			}
			a, err := serial.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			b, err := parallel.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("%s/%s: EvalWorkers 1 vs 4 diverge under this channel model", c.Name, m.Name)
			}
		}
	}
}

// TestChannelModelComposesWithFaults runs a stochastic channel model under
// a fault scenario: the two layers must compose without breaking any
// invariant, stay reproducible, and the faulted run must diverge from the
// fault-free run under the same model.
func TestChannelModelComposesWithFaults(t *testing.T) {
	var c Case
	for _, cand := range Cases() {
		if cand.Name == "fedavg" {
			c = cand
		}
	}
	m := ChannelModels()[1] // radio
	if m.Name != channel.ModelRadio {
		t.Fatalf("expected radio at axis slot 1, got %s", m.Name)
	}
	run := func(scenario string) []byte {
		res, err := RunChannel(c, m, scenario, matrixSeed, 0)
		if err != nil {
			t.Fatalf("%s/%s/%s: %v", c.Name, scenario, m.Name, err)
		}
		if err := CheckInvariants(res); err != nil {
			t.Fatalf("%s/%s/%s: %v", c.Name, scenario, m.Name, err)
		}
		b, err := res.CanonicalBytes()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	clean := run(ScenarioFaultFree)
	faulted := run(faults.ScenarioBurstLoss)
	if bytes.Equal(clean, faulted) {
		t.Error("burst-loss scenario had no effect under the radio model")
	}
	if again := run(faults.ScenarioBurstLoss); !bytes.Equal(faulted, again) {
		t.Error("faulted radio run is not reproducible at the same seed")
	}
}

// TestExplicitAnalyticModelByteIdentical proves the model code path itself
// reproduces the legacy analytic path float for float: a run with an
// explicit channel.Analytic model installed (forcing every transfer
// through the Link/Outcome machinery) is byte-identical to the default
// run that never constructs a model.
func TestExplicitAnalyticModelByteIdentical(t *testing.T) {
	var c Case
	for _, cand := range Cases() {
		if cand.Name == "opportunistic" {
			c = cand
		}
	}
	run := func(install bool) []byte {
		cfg := Config(matrixSeed)
		strat, err := c.New()
		if err != nil {
			t.Fatal(err)
		}
		exp, err := core.New(cfg, strat)
		if err != nil {
			t.Fatal(err)
		}
		if install {
			// The RNG seed is arbitrary: Analytic consumes no randomness and
			// produces no model drop, so the stream is never read.
			if err := exp.Network().SetChannel(channel.Analytic{}, sim.NewRNG(12345)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.CanonicalBytes()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(false), run(true); !bytes.Equal(a, b) {
		t.Error("explicit Analytic model diverges from the legacy analytic code path")
	}
}

// TestChannelRecordIsResultInvariant asserts the recorder contract: a
// recorded run is byte-identical to the same run unrecorded, and the log it
// returns is non-empty with channel-attributable outcomes.
func TestChannelRecordIsResultInvariant(t *testing.T) {
	var c Case
	for _, cand := range Cases() {
		if cand.Name == "fedavg" {
			c = cand
		}
	}
	run := func(record bool) (*core.Result, []byte) {
		cfg := Config(matrixSeed)
		cfg.Comm.Channel = &channel.Config{Model: channel.ModelRadio}
		cfg.ChannelRecord = record
		strat, err := c.New()
		if err != nil {
			t.Fatal(err)
		}
		exp, err := core.New(cfg, strat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.CanonicalBytes()
		if err != nil {
			t.Fatal(err)
		}
		return res, b
	}
	plain, a := run(false)
	recorded, b := run(true)
	if !bytes.Equal(a, b) {
		t.Fatal("recording the channel trace perturbed the run")
	}
	if plain.ChannelLog != nil {
		t.Error("unrecorded run returned a channel log")
	}
	if recorded.ChannelLog == nil || recorded.ChannelLog.Len() == 0 {
		t.Fatal("recorded run returned no channel samples")
	}
	var delivered int
	for _, s := range recorded.ChannelLog.Samples() {
		if s.Outcome == channel.OutcomeDelivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Error("channel trace recorded no delivered transfers")
	}
}
