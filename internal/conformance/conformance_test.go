package conformance

import (
	"bytes"
	"testing"

	"roadrunner/internal/core"
	"roadrunner/internal/faults"
	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
)

const matrixSeed = 1

// runCell executes one (strategy, scenario) cell twice with the same seed,
// asserting the acceptance contract for every cell: both runs complete
// without error, both uphold the framework invariants, and the two results
// are byte-identical under the canonical encoding.
func runCell(t *testing.T, c Case, scenario string) *cellResult {
	t.Helper()
	first, err := Run(c, scenario, matrixSeed)
	if err != nil {
		t.Fatalf("%s/%s: %v", c.Name, scenario, err)
	}
	if err := CheckInvariants(first); err != nil {
		t.Fatalf("%s/%s: %v", c.Name, scenario, err)
	}
	second, err := Run(c, scenario, matrixSeed)
	if err != nil {
		t.Fatalf("%s/%s (repeat): %v", c.Name, scenario, err)
	}
	if err := CheckInvariants(second); err != nil {
		t.Fatalf("%s/%s (repeat): %v", c.Name, scenario, err)
	}
	a, err := first.CanonicalBytes()
	if err != nil {
		t.Fatalf("%s/%s: canonical encode: %v", c.Name, scenario, err)
	}
	b, err := second.CanonicalBytes()
	if err != nil {
		t.Fatalf("%s/%s (repeat): canonical encode: %v", c.Name, scenario, err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("%s/%s: same-seed runs are not byte-identical (%d vs %d canonical bytes)",
			c.Name, scenario, len(a), len(b))
	}
	return &cellResult{res: first, canonical: a}
}

type cellResult struct {
	res       *core.Result
	canonical []byte
}

// TestConformanceMatrix is the full strategy x scenario grid: every strategy
// in the framework against the fault-free baseline and every named fault
// scenario. Each cell checks completion, stats conservation, monotone time,
// and same-seed byte-identity; the grid as a whole checks that fault
// scenarios observably perturb the runs they should perturb.
func TestConformanceMatrix(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			baseline := runCell(t, c, ScenarioFaultFree)
			if n := FaultCounters(baseline.res); n != 0 {
				t.Fatalf("fault-free run recorded %v fault counters", n)
			}
			if s := baseline.res.Metrics.Series(metrics.SeriesFaultsActive); s != nil {
				t.Fatalf("fault-free run recorded a faults_active series (%d points)", len(s.Points))
			}
			for _, sc := range faults.ScenarioNames() {
				sc := sc
				t.Run(sc, func(t *testing.T) {
					cell := runCell(t, c, sc)
					// Every scenario opens at least one fault window before
					// the shortest strategy run ends, so the injector must
					// have recorded activity in every faulted cell.
					if s := cell.res.Metrics.Series(metrics.SeriesFaultsActive); s == nil || len(s.Points) == 0 {
						t.Error("faulted run recorded no faults_active points")
					}
					if bytes.Equal(cell.canonical, baseline.canonical) {
						t.Error("faulted run is byte-identical to the fault-free run; scenario had no effect")
					}
				})
			}
		})
	}
}

// TestScenariosInjectObservableFaults pins down, per scenario, which fault
// counters must fire at conformance scale. Blackouts and bandwidth ramps do
// not appear here: blackouts mostly reject at send time (no failure is
// counted) and ramps only stretch transfers — their effects are asserted via
// accuracy and canonical-byte divergence instead.
func TestScenariosInjectObservableFaults(t *testing.T) {
	counters := func(c Case, scenario string) (blackout, burst, kills, forcedOff float64) {
		t.Helper()
		res, err := Run(c, scenario, matrixSeed)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.Name, scenario, err)
		}
		return res.Metrics.Counter(metrics.CounterFaultBlackoutFails),
			res.Metrics.Counter(metrics.CounterFaultBurstDrops),
			res.Metrics.Counter(metrics.CounterFaultLinkKills),
			res.Metrics.Counter(metrics.CounterFaultForcedOff)
	}
	for _, c := range Cases() {
		_, _, _, off := counters(c, faults.ScenarioRSUOutage)
		if off < 1 {
			t.Errorf("%s/rsu-outage: no forced power-off recorded", c.Name)
		}
		_, _, _, off = counters(c, faults.ScenarioChurnStorm)
		if off < 2 {
			t.Errorf("%s/churn-storm: forced-off count %v, want several vehicles", c.Name, off)
		}
		_, _, _, off = counters(c, faults.ScenarioMixed)
		if off < 1 {
			t.Errorf("%s/mixed: no forced power-off recorded", c.Name)
		}
	}
	// Burst loss drops V2X traffic, so it must surface for the strategies
	// that exchange models vehicle-to-vehicle.
	for _, c := range Cases() {
		switch c.Name {
		case "gossip", "hybrid":
			_, burst, _, _ := counters(c, faults.ScenarioBurstLoss)
			if burst < 1 {
				t.Errorf("%s/burst-loss: no burst drops recorded", c.Name)
			}
		}
	}
}

// TestFaultsDegradeButDoNotDestroy asserts the accuracy ordering the fault
// model promises for the paper's two headline decentralized strategies
// (FedAvg/BASE and Opportunistic/OPP): a faulted run never beats the
// fault-free run, a mid-run V2C blackout strictly hurts (both strategies
// depend on the uplink), and no scenario destroys learning outright —
// faulted accuracy stays above the untrained chance level.
func TestFaultsDegradeButDoNotDestroy(t *testing.T) {
	cfg := Config(matrixSeed)
	chance := 1.0 / float64(cfg.Data.Classes)
	for _, c := range Cases() {
		if c.Name != "fedavg" && c.Name != "opportunistic" {
			continue
		}
		baseline, err := Run(c, ScenarioFaultFree, matrixSeed)
		if err != nil {
			t.Fatalf("%s/fault-free: %v", c.Name, err)
		}
		if baseline.FinalAccuracy <= chance {
			t.Fatalf("%s/fault-free: accuracy %v at or below chance %v; baseline did not learn",
				c.Name, baseline.FinalAccuracy, chance)
		}
		for _, sc := range faults.ScenarioNames() {
			res, err := Run(c, sc, matrixSeed)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name, sc, err)
			}
			if res.FinalAccuracy > baseline.FinalAccuracy {
				t.Errorf("%s/%s: faulted accuracy %v beats fault-free %v",
					c.Name, sc, res.FinalAccuracy, baseline.FinalAccuracy)
			}
			if res.FinalAccuracy <= chance {
				t.Errorf("%s/%s: accuracy %v at or below chance %v; fault destroyed learning",
					c.Name, sc, res.FinalAccuracy, chance)
			}
			if sc == faults.ScenarioBlackout && res.FinalAccuracy >= baseline.FinalAccuracy {
				t.Errorf("%s/blackout: accuracy %v not strictly below fault-free %v despite losing V2C for a third of the run",
					c.Name, res.FinalAccuracy, baseline.FinalAccuracy)
			}
		}
	}
}

// TestScenarioGridShape guards the grid definition itself: the conformance
// matrix must cover every strategy and at least the four named scenarios the
// harness promises, and every scenario plan must scale to any horizon.
func TestScenarioGridShape(t *testing.T) {
	if n := len(Cases()); n != 6 {
		t.Fatalf("conformance covers %d strategies, want 6", n)
	}
	if n := len(faults.ScenarioNames()); n < 4 {
		t.Fatalf("conformance covers %d fault scenarios, want >= 4", n)
	}
	for _, sc := range faults.ScenarioNames() {
		for _, horizon := range []sim.Duration{60, ScenarioHorizon, 2 * sim.Hour} {
			plan, err := faults.ScenarioPlan(sc, horizon)
			if err != nil {
				t.Errorf("%s @ %v: %v", sc, float64(horizon), err)
				continue
			}
			if err := plan.Validate(); err != nil {
				t.Errorf("%s @ %v: %v", sc, float64(horizon), err)
			}
			if plan.Empty() {
				t.Errorf("%s @ %v: empty plan", sc, float64(horizon))
			}
		}
	}
}
