// Package conformance is the strategy-conformance harness: it runs every
// learning strategy in internal/strategy against the named fault-scenario
// grid of internal/faults and machine-checks the invariants the framework
// promises regardless of strategy or fault plan — runs complete, the
// communication module's accounting conserves, simulated time is monotone,
// and a (config, seed, plan) triple determines a run byte for byte.
//
// The paper's framework exists to compare learning strategies under
// realistic vehicular conditions (§3–§4); this package is the executable
// definition of "a strategy behaves correctly under those conditions". A
// new strategy or a new fault type that breaks an invariant fails the
// conformance matrix test, not a downstream figure.
package conformance

import (
	"fmt"
	"math"

	"roadrunner/internal/channel"
	"roadrunner/internal/comm"
	"roadrunner/internal/core"
	"roadrunner/internal/dataset"
	"roadrunner/internal/faults"
	"roadrunner/internal/metrics"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
)

// ScenarioFaultFree names the empty fault plan in the scenario grid.
const ScenarioFaultFree = "fault-free"

// Scenarios returns the conformance grid's scenario names: the fault-free
// baseline plus every named fault scenario.
func Scenarios() []string {
	return append([]string{ScenarioFaultFree}, faults.ScenarioNames()...)
}

// Config is the conformance-scale experiment environment: a compact fleet
// on a small grid with two RSUs (so RSU-assisted strategies and RSU-outage
// scenarios are exercised), sized so a full strategy run completes in
// fractions of a host second.
func Config(seed uint64) core.Config {
	cfg := core.SmallConfig()
	cfg.Seed = seed
	cfg.RSUCount = 2
	cfg.Fleet.Vehicles = 16
	cfg.Fleet.Horizon = 1800
	cfg.Partition = dataset.PartitionConfig{Scheme: dataset.SchemeShards, PerAgent: 24, ShardsPerAgent: 2}
	cfg.TestSamples = 120
	return cfg
}

// ScenarioHorizon is the reference duration fault-scenario windows are
// scaled to. It is deliberately shorter than the trace horizon: the
// round-based strategies finish their conformance-scale runs within a few
// hundred simulated seconds, and windows must land inside the part of the
// run where traffic actually flows to exercise anything.
const ScenarioHorizon sim.Duration = 600

// Case is one strategy under conformance test. New builds a fresh strategy
// instance per run — strategies are stateful, so instances must never be
// shared between runs.
type Case struct {
	Name string
	New  func() (strategy.Strategy, error)
}

// Cases returns every strategy in the framework, configured at conformance
// scale (few rounds, windows that fit the Config horizon).
func Cases() []Case {
	return []Case{
		{Name: "centralized", New: func() (strategy.Strategy, error) {
			c := strategy.DefaultCentralizedConfig()
			c.Rounds = 3
			c.RoundDuration = 150
			c.UploadCheckInterval = 45
			return strategy.NewCentralized(c)
		}},
		{Name: "fedavg", New: func() (strategy.Strategy, error) {
			c := strategy.DefaultFedAvgConfig()
			c.Rounds = 10
			c.VehiclesPerRound = 3
			return strategy.NewFederatedAveraging(c)
		}},
		{Name: "opportunistic", New: func() (strategy.Strategy, error) {
			c := strategy.DefaultOppConfig()
			c.Rounds = 4
			c.Reporters = 3
			c.RoundDuration = 120
			c.ExchangeTimeout = 45
			return strategy.NewOpportunistic(c)
		}},
		{Name: "gossip", New: func() (strategy.Strategy, error) {
			c := strategy.DefaultGossipConfig()
			c.Duration = 1500
			c.EvalInterval = 300
			c.EvalSample = 4
			return strategy.NewGossip(c)
		}},
		{Name: "hybrid", New: func() (strategy.Strategy, error) {
			c := strategy.DefaultHybridConfig()
			c.Gossip.Duration = 1500
			c.Gossip.EvalInterval = 300
			c.Gossip.EvalSample = 4
			c.SyncInterval = 400
			c.SyncVehicles = 3
			return strategy.NewHybrid(c)
		}},
		{Name: "rsu", New: func() (strategy.Strategy, error) {
			c := strategy.DefaultRSUAssistedConfig()
			c.Rounds = 3
			c.RoundDuration = 120
			c.ExchangeTimeout = 45
			return strategy.NewRSUAssisted(c)
		}},
	}
}

// Run executes one cell of the conformance matrix: the cased strategy on
// the conformance Config under the named scenario's fault plan.
func Run(c Case, scenario string, seed uint64) (*core.Result, error) {
	cfg := Config(seed)
	if scenario != ScenarioFaultFree {
		plan, err := faults.ScenarioPlan(scenario, ScenarioHorizon)
		if err != nil {
			return nil, err
		}
		cfg.Faults = &plan
	}
	strat, err := c.New()
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", c.Name, err)
	}
	exp, err := core.New(cfg, strat)
	if err != nil {
		return nil, fmt.Errorf("conformance: %s/%s: %w", c.Name, scenario, err)
	}
	res, err := exp.Run()
	if err != nil {
		return nil, fmt.Errorf("conformance: %s/%s: %w", c.Name, scenario, err)
	}
	return res, nil
}

// ChannelModel is one cell of the channel-model conformance axis: a named
// internal/channel configuration. A nil Config is the analytic default
// (the original code path, not even a constructed model).
type ChannelModel struct {
	Name   string
	Config *channel.Config
}

// ChannelModels returns the channel-model axis of the conformance matrix:
// the analytic baseline, the two stochastic radio stacks, and a
// data-driven oracle with a static inline table (so the axis needs no
// fitted file and stays self-contained). Every strategy must uphold the
// framework invariants — and same-seed byte-identity — under every model.
func ChannelModels() []ChannelModel {
	inf := math.Inf(1)
	wide := func(k channel.Kind, kbps, lat, drop float64) channel.Bin {
		// One all-covering box per kind (DistLo -1 also catches links
		// without positions).
		return channel.Bin{
			Kind: k, DistLo: -1, DistHi: inf, SizeLo: 0, SizeHi: inf,
			LoadLo: 0, LoadHi: inf, KBps: kbps, LatencyS: lat, DropProb: drop, N: 1,
		}
	}
	return []ChannelModel{
		{Name: channel.ModelAnalytic, Config: nil},
		{Name: channel.ModelRadio, Config: &channel.Config{Model: channel.ModelRadio}},
		{Name: channel.ModelRadioQueued, Config: &channel.Config{Model: channel.ModelRadioQueued}},
		{Name: channel.ModelOracle, Config: &channel.Config{
			Model: channel.ModelOracle,
			Oracle: &channel.OracleConfig{Table: []channel.Bin{
				wide(channel.KindV2C, 1500, 0.07, 0.02),
				wide(channel.KindV2X, 2500, 0.03, 0.05),
				wide(channel.KindWired, 100000, 0.005, 0),
			}},
		}},
	}
}

// RunChannel executes one cell of the channel axis: the cased strategy
// under the named fault scenario with the given channel model, evaluated
// with evalWorkers goroutines (0 means serial).
func RunChannel(c Case, m ChannelModel, scenario string, seed uint64, evalWorkers int) (*core.Result, error) {
	cfg := Config(seed)
	cfg.Comm.Channel = m.Config
	cfg.EvalWorkers = evalWorkers
	if scenario != ScenarioFaultFree {
		plan, err := faults.ScenarioPlan(scenario, ScenarioHorizon)
		if err != nil {
			return nil, err
		}
		cfg.Faults = &plan
	}
	strat, err := c.New()
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", c.Name, err)
	}
	exp, err := core.New(cfg, strat)
	if err != nil {
		return nil, fmt.Errorf("conformance: %s/%s/%s: %w", c.Name, scenario, m.Name, err)
	}
	res, err := exp.Run()
	if err != nil {
		return nil, fmt.Errorf("conformance: %s/%s/%s: %w", c.Name, scenario, m.Name, err)
	}
	return res, nil
}

// CheckInvariants machine-checks the framework invariants one run must
// uphold regardless of strategy and fault plan:
//
//  1. the run produced a result with a non-negative end instant and at
//     least one processed event;
//  2. comm.Stats accounting conserves per channel kind — every sent
//     message is eventually delivered or failed, and delivered bytes never
//     exceed attempted bytes;
//  3. every metric series is monotone in simulated time and bounded by the
//     run's end instant.
func CheckInvariants(res *core.Result) error {
	if res == nil {
		return fmt.Errorf("conformance: nil result")
	}
	if res.End < 0 {
		return fmt.Errorf("conformance: negative end instant %v", float64(res.End))
	}
	if res.EventsProcessed == 0 {
		return fmt.Errorf("conformance: no events processed")
	}
	for _, k := range comm.Kinds() {
		s, ok := res.Comm[k.String()]
		if !ok {
			return fmt.Errorf("conformance: missing %v comm stats", k)
		}
		if s.MessagesSent < 0 || s.MessagesDelivered < 0 || s.MessagesFailed < 0 {
			return fmt.Errorf("conformance: %v: negative message count %+v", k, s)
		}
		if s.MessagesSent != s.MessagesDelivered+s.MessagesFailed {
			return fmt.Errorf("conformance: %v: sent %d != delivered %d + failed %d",
				k, s.MessagesSent, s.MessagesDelivered, s.MessagesFailed)
		}
		if s.BytesDelivered > s.BytesAttempted {
			return fmt.Errorf("conformance: %v: delivered bytes %d exceed attempted %d",
				k, s.BytesDelivered, s.BytesAttempted)
		}
		if s.BytesDelivered < 0 || s.BytesAttempted < 0 {
			return fmt.Errorf("conformance: %v: negative byte count %+v", k, s)
		}
	}
	if res.Metrics == nil {
		return fmt.Errorf("conformance: nil metrics recorder")
	}
	for _, name := range res.Metrics.SeriesNames() {
		s := res.Metrics.Series(name)
		for i, p := range s.Points {
			if !p.T.IsValid() || p.T < 0 {
				return fmt.Errorf("conformance: series %q point %d: invalid time %v", name, i, float64(p.T))
			}
			if p.T > res.End {
				return fmt.Errorf("conformance: series %q point %d: time %v after run end %v",
					name, i, float64(p.T), float64(res.End))
			}
			if i > 0 && p.T < s.Points[i-1].T {
				return fmt.Errorf("conformance: series %q point %d: time %v before predecessor %v",
					name, i, float64(p.T), float64(s.Points[i-1].T))
			}
		}
	}
	return nil
}

// FaultCounters sums the run's fault-attributed failure counters, for
// asserting that a scenario actually injected something.
func FaultCounters(res *core.Result) float64 {
	return res.Metrics.Counter(metrics.CounterFaultBlackoutFails) +
		res.Metrics.Counter(metrics.CounterFaultBurstDrops) +
		res.Metrics.Counter(metrics.CounterFaultLinkKills) +
		res.Metrics.Counter(metrics.CounterFaultForcedOff)
}
