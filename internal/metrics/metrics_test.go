package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"roadrunner/internal/sim"
)

func TestReadJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	if err := r.Record(SeriesAccuracy, 10, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(SeriesAccuracy, 20, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(SeriesVehiclesOn, 5, 12); err != nil {
		t.Fatal(err)
	}
	r.Add("z_counter", 2)
	r.Add("a_counter", 1)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{SeriesAccuracy, SeriesVehiclesOn}
	gotOrder := back.SeriesNames()
	if len(gotOrder) != len(wantOrder) || gotOrder[0] != wantOrder[0] || gotOrder[1] != wantOrder[1] {
		t.Fatalf("series order = %v, want %v", gotOrder, wantOrder)
	}
	if got := back.Series(SeriesAccuracy); got == nil || got.Len() != 2 || got.Points[1].Value != 0.4 {
		t.Fatalf("accuracy series not restored: %+v", got)
	}
	if back.Counter("a_counter") != 1 || back.Counter("z_counter") != 2 {
		t.Fatalf("counters not restored: a=%v z=%v", back.Counter("a_counter"), back.Counter("z_counter"))
	}
	names := back.CounterNames()
	if len(names) != 2 || names[0] != "a_counter" || names[1] != "z_counter" {
		t.Fatalf("counter names = %v, want sorted order", names)
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	for name, payload := range map[string]string{
		"not json":      "{",
		"unnamed":       `{"series":[{"name":"","points":[]}],"counters":{}}`,
		"duplicate":     `{"series":[{"name":"a","points":[]},{"name":"a","points":[]}],"counters":{}}`,
		"time reversed": `{"series":[{"name":"a","points":[{"t":5,"value":1},{"t":2,"value":1}]}],"counters":{}}`,
	} {
		if _, err := ReadJSON(strings.NewReader(payload)); err == nil {
			t.Fatalf("%s payload accepted", name)
		}
	}
}

func TestRecordAndSeries(t *testing.T) {
	r := NewRecorder()
	if err := r.Record(SeriesAccuracy, 10, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(SeriesAccuracy, 20, 0.4); err != nil {
		t.Fatal(err)
	}
	s := r.Series(SeriesAccuracy)
	if s == nil || s.Len() != 2 {
		t.Fatalf("series = %+v", s)
	}
	last, ok := s.Last()
	if !ok || last.Value != 0.4 || last.T != 20 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
	if r.Series("nothing") != nil {
		t.Fatal("unknown series not nil")
	}
}

func TestRecordValidation(t *testing.T) {
	r := NewRecorder()
	if err := r.Record("", 0, 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Record("x", sim.Time(-1), 1); err == nil {
		t.Fatal("negative timestamp accepted")
	}
	if err := r.Record("x", 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Record("x", 5, 1); err == nil {
		t.Fatal("out-of-order timestamp accepted")
	}
	if err := r.Record("x", 10, 2); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
}

func TestCounters(t *testing.T) {
	r := NewRecorder()
	r.Add(CounterV2CBytes, 100)
	r.Add(CounterV2CBytes, 50)
	r.Add(CounterRounds, 1)
	if got := r.Counter(CounterV2CBytes); got != 150 {
		t.Fatalf("counter = %v", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %v", got)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != CounterV2CBytes || names[1] != CounterRounds {
		t.Fatalf("CounterNames = %v", names)
	}
}

func TestSeriesStatistics(t *testing.T) {
	r := NewRecorder()
	for i, v := range []float64{2, 8, 5} {
		if err := r.Record("s", sim.Time(i), v); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Series("s")
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Max() != 8 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Min() != 2 {
		t.Fatalf("Min = %v", s.Min())
	}
	var empty Series
	if empty.Mean() != 0 {
		t.Fatal("empty Mean != 0")
	}
	if !math.IsInf(empty.Max(), -1) || !math.IsInf(empty.Min(), 1) {
		t.Fatal("empty Max/Min not infinite")
	}
	if _, ok := empty.Last(); ok {
		t.Fatal("empty Last ok")
	}
}

func TestSeriesAt(t *testing.T) {
	r := NewRecorder()
	for i, v := range []float64{1, 2, 3} {
		if err := r.Record("s", sim.Time(10*(i+1)), v); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Series("s")
	if _, ok := s.At(5); ok {
		t.Fatal("At before first point reported ok")
	}
	if v, ok := s.At(10); !ok || v != 1 {
		t.Fatalf("At(10) = %v, %v", v, ok)
	}
	if v, ok := s.At(25); !ok || v != 2 {
		t.Fatalf("At(25) = %v, %v", v, ok)
	}
	if v, ok := s.At(1000); !ok || v != 3 {
		t.Fatalf("At(1000) = %v, %v", v, ok)
	}
}

func TestSeriesNamesOrdered(t *testing.T) {
	r := NewRecorder()
	for _, name := range []string{"c", "a", "b"} {
		if err := r.Record(name, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := r.SeriesNames()
	if len(got) != 3 || got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Fatalf("SeriesNames = %v, want first-recorded order", got)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	if err := r.Record("acc", 1.5, 0.25); err != nil {
		t.Fatal(err)
	}
	r.Add("bytes", 42)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{"series,t,value", "acc,1.5,0.25", "counter:bytes,,42"}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Fatalf("csv output missing %q:\n%s", w, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRecorder()
	if err := r.Record("acc", 1, 0.5); err != nil {
		t.Fatal(err)
	}
	r.Add("rounds", 3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(snap.Series) != 1 || snap.Series[0].Name != "acc" {
		t.Fatalf("snapshot series = %+v", snap.Series)
	}
	if snap.Counters["rounds"] != 3 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
}

func TestSnapshotIsolationOfCounters(t *testing.T) {
	r := NewRecorder()
	r.Add("x", 1)
	snap := r.Snapshot()
	snap.Counters["x"] = 99
	if r.Counter("x") != 1 {
		t.Fatal("mutating snapshot counters mutated the recorder")
	}
}

func TestMovingAverage(t *testing.T) {
	r := NewRecorder()
	for i, v := range []float64{1, 3, 5, 7} {
		if err := r.Record("s", sim.Time(i), v); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Series("s")
	sm := s.MovingAverage(2)
	want := []float64{1, 2, 4, 6}
	for i, p := range sm.Points {
		if p.Value != want[i] {
			t.Fatalf("smoothed[%d] = %v, want %v (got %v)", i, p.Value, want[i], sm.Points)
		}
		if p.T != s.Points[i].T {
			t.Fatalf("timestamps changed at %d", i)
		}
	}
	// k<=1 is a copy.
	copy1 := s.MovingAverage(1)
	for i := range s.Points {
		if copy1.Points[i] != s.Points[i] {
			t.Fatal("k=1 not identity")
		}
	}
	copy1.Points[0].Value = 99
	if s.Points[0].Value == 99 {
		t.Fatal("MovingAverage aliases the original")
	}
	var empty Series
	if got := empty.MovingAverage(3); got.Len() != 0 {
		t.Fatal("empty smoothing not empty")
	}
	// Window larger than the series: mean-so-far.
	wide := s.MovingAverage(10)
	if wide.Points[3].Value != 4 {
		t.Fatalf("wide window last = %v, want 4", wide.Points[3].Value)
	}
}

// TestSeriesAtEdgeCases pins down the documented At contract on every
// boundary: nil and empty receivers, a query before the first point, exact
// hits on the first and last points, between-point queries (latest at-or-
// before wins), and queries past the end.
func TestSeriesAtEdgeCases(t *testing.T) {
	three := &Series{Name: "s", Points: []Point{{T: 10, Value: 1}, {T: 20, Value: 2}, {T: 30, Value: 3}}}
	var nilSeries *Series
	cases := []struct {
		name   string
		s      *Series
		t      sim.Time
		want   float64
		wantOK bool
	}{
		{"nil receiver", nilSeries, 10, 0, false},
		{"empty series", &Series{Name: "e"}, 10, 0, false},
		{"before first point", three, 9, 0, false},
		{"just before first point", three, 9.999, 0, false},
		{"exactly at first point", three, 10, 1, true},
		{"between points", three, 25, 2, true},
		{"exactly at last point", three, 30, 3, true},
		{"after last point", three, 1e9, 3, true},
		{"at zero on empty", &Series{}, 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := tc.s.At(tc.t)
			if got != tc.want || ok != tc.wantOK {
				t.Fatalf("At(%v) = (%v, %v), want (%v, %v)", tc.t, got, ok, tc.want, tc.wantOK)
			}
		})
	}
}

// TestMovingAverageEdgeCases pins down the documented total behaviour of
// MovingAverage on degenerate windows and receivers: nil and empty series,
// k <= 0, k == 1 (identity copy), and k larger than the series (prefix
// means), alongside a normal window for contrast.
func TestMovingAverageEdgeCases(t *testing.T) {
	base := &Series{Name: "s", Points: []Point{{T: 0, Value: 2}, {T: 1, Value: 4}, {T: 2, Value: 6}}}
	var nilSeries *Series
	cases := []struct {
		name string
		s    *Series
		k    int
		want []float64 // nil means expect zero points
	}{
		{"nil receiver", nilSeries, 3, nil},
		{"empty series", &Series{Name: "e"}, 3, nil},
		{"k negative", base, -2, []float64{2, 4, 6}},
		{"k zero", base, 0, []float64{2, 4, 6}},
		{"k one", base, 1, []float64{2, 4, 6}},
		{"k two", base, 2, []float64{2, 3, 5}},
		{"k equals len", base, 3, []float64{2, 3, 4}},
		{"k beyond len", base, 100, []float64{2, 3, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.s.MovingAverage(tc.k)
			if got == nil {
				t.Fatal("MovingAverage returned nil")
			}
			if got.Len() != len(tc.want) {
				t.Fatalf("len = %d, want %d (%+v)", got.Len(), len(tc.want), got.Points)
			}
			for i, w := range tc.want {
				if got.Points[i].Value != w {
					t.Fatalf("point %d = %v, want %v (%+v)", i, got.Points[i].Value, w, got.Points)
				}
				if got.Points[i].T != tc.s.Points[i].T {
					t.Fatalf("point %d timestamp changed: %v", i, got.Points[i].T)
				}
			}
		})
	}
}

// TestRecordRejectsNonFinite: NaN and ±Inf must never enter a series —
// they have no canonical JSON encoding, so one slipping through would
// corrupt the run store's re-encoding-equality check far from the bug.
func TestRecordRejectsNonFinite(t *testing.T) {
	for name, v := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		t.Run(name, func(t *testing.T) {
			r := NewRecorder()
			if err := r.Record("fresh", 0, v); err == nil {
				t.Fatalf("Record accepted %v", v)
			}
			// A rejected first touch must not register the series.
			if r.Series("fresh") != nil || len(r.SeriesNames()) != 0 {
				t.Fatalf("rejected record registered series: %v", r.SeriesNames())
			}
			// A rejected record on an existing series must not append.
			if err := r.Record("s", 1, 0.5); err != nil {
				t.Fatal(err)
			}
			if err := r.Record("s", 2, v); err == nil {
				t.Fatalf("Record accepted %v on existing series", v)
			}
			if got := r.Series("s").Len(); got != 1 {
				t.Fatalf("series grew to %d points after rejected record", got)
			}
		})
	}
}

// TestAddIgnoresNonFinite: a non-finite counter delta is dropped without
// touching the counter's value or registering its name.
func TestAddIgnoresNonFinite(t *testing.T) {
	for name, v := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		t.Run(name, func(t *testing.T) {
			r := NewRecorder()
			// First touch with a non-finite delta must not register the name.
			r.Add("fresh", v)
			if len(r.CounterNames()) != 0 {
				t.Fatalf("non-finite first touch registered counter: %v", r.CounterNames())
			}
			// An existing counter must keep its value.
			r.Add("c", 3)
			r.Add("c", v)
			if got := r.Counter("c"); got != 3 {
				t.Fatalf("counter = %v after non-finite add, want 3", got)
			}
			names := r.CounterNames()
			if len(names) != 1 || names[0] != "c" {
				t.Fatalf("counter names = %v, want [c]", names)
			}
		})
	}
}

// TestSnapshotJSONStaysFinite ties the two guards together: no sequence of
// Record/Add calls can produce a snapshot that fails to marshal as strict
// JSON (which rejects NaN/Inf) — the property the content-addressed store
// depends on.
func TestSnapshotJSONStaysFinite(t *testing.T) {
	r := NewRecorder()
	if err := r.Record("s", 0, 0.25); err != nil {
		t.Fatal(err)
	}
	_ = r.Record("s", 1, math.NaN())
	_ = r.Record("s", 2, math.Inf(1))
	r.Add("c", 1)
	r.Add("c", math.Inf(-1))
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot not strict-JSON-encodable: %v", err)
	}
}
