// Package metrics collects an experiment run's measurements, timestamped
// in simulated time, "to enable analysis of the system's evolution under a
// learning strategy" (paper §4). It replaces the prototype's Log4j-based
// extraction with structured series and counters plus CSV/JSON export.
//
// The built-in metric families follow §3 requirement 4: model accuracy over
// time, communication volumes per channel, and custom metrics such as
// per-vehicle computational load. Everything is a named series or counter,
// so strategies can add their own without touching this package.
package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"roadrunner/internal/sim"
)

// Point is one timestamped measurement.
type Point struct {
	T     sim.Time `json:"t"`
	Value float64  `json:"value"`
}

// Series is a named, time-ordered sequence of measurements.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Last returns the final point; ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Mean returns the arithmetic mean of the values (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Max returns the largest value (-Inf for an empty series).
func (s *Series) Max() float64 {
	best := math.Inf(-1)
	for _, p := range s.Points {
		if p.Value > best {
			best = p.Value
		}
	}
	return best
}

// Min returns the smallest value (+Inf for an empty series).
func (s *Series) Min() float64 {
	best := math.Inf(1)
	for _, p := range s.Points {
		if p.Value < best {
			best = p.Value
		}
	}
	return best
}

// At returns the latest value recorded at or before t. ok is false — and
// the value 0 — when there is nothing to return: a nil or empty series, or
// a query instant before the first recorded point. A point recorded exactly
// at t is included.
func (s *Series) At(t sim.Time) (float64, bool) {
	if s == nil {
		return 0, false
	}
	idx := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t }) - 1
	if idx < 0 {
		return 0, false
	}
	return s.Points[idx].Value, true
}

// Recorder accumulates series and counters for one experiment run. It is
// single-goroutine, like the simulation that feeds it.
type Recorder struct {
	series   map[string]*Series
	counters map[string]float64
	order    []string // series in first-recorded order
	corder   []string // counters in first-touched order
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		series:   make(map[string]*Series),
		counters: make(map[string]float64),
	}
}

// Record appends a timestamped value to the named series. Timestamps must
// be non-decreasing per series. Non-finite values (NaN, ±Inf) are rejected:
// they have no canonical JSON encoding, so letting one in would corrupt the
// store's re-encoding-equality guarantee long after the recording site is
// gone — the error surfaces the bug where it happened.
func (r *Recorder) Record(name string, t sim.Time, value float64) error {
	if name == "" {
		return fmt.Errorf("metrics: empty series name")
	}
	if !t.IsValid() {
		return fmt.Errorf("metrics: invalid timestamp %v", float64(t))
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("metrics: series %q: non-finite value %v at %v", name, value, t)
	}
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	if n := len(s.Points); n > 0 && s.Points[n-1].T > t {
		return fmt.Errorf("metrics: series %q: timestamp %v before last %v", name, t, s.Points[n-1].T)
	}
	s.Points = append(s.Points, Point{T: t, Value: value})
	return nil
}

// Add increments the named counter. A non-finite delta (NaN, ±Inf) is
// ignored: one bad increment must not poison the counter — and with it the
// run's canonical bytes — for the rest of the run. (Record, which keeps
// every sample, rejects loudly instead; a dropped increment is recoverable,
// a corrupted series point is not.)
func (r *Recorder) Add(name string, delta float64) {
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return
	}
	if _, ok := r.counters[name]; !ok {
		r.corder = append(r.corder, name)
	}
	r.counters[name] += delta
}

// Counter returns the counter's current value (0 if never touched).
func (r *Recorder) Counter(name string) float64 { return r.counters[name] }

// Series returns the named series, or nil if nothing was recorded under
// that name. The returned value is live; callers must not mutate it.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// SeriesNames returns series names in first-recorded order.
func (r *Recorder) SeriesNames() []string {
	return append([]string(nil), r.order...)
}

// CounterNames returns counter names in first-touched order.
func (r *Recorder) CounterNames() []string {
	return append([]string(nil), r.corder...)
}

// WriteCSV emits all series in long format (series,t,value), followed by
// counters as pseudo-series rows with an empty timestamp.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "t", "value"}); err != nil {
		return fmt.Errorf("metrics: write csv: %w", err)
	}
	for _, name := range r.order {
		for _, p := range r.series[name].Points {
			row := []string{
				name,
				strconv.FormatFloat(float64(p.T), 'g', -1, 64),
				strconv.FormatFloat(p.Value, 'g', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("metrics: write csv: %w", err)
			}
		}
	}
	for _, name := range r.corder {
		row := []string{"counter:" + name, "", strconv.FormatFloat(r.counters[name], 'g', -1, 64)}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: flush csv: %w", err)
	}
	return nil
}

// Snapshot is the JSON-exportable view of a recorder.
type Snapshot struct {
	Series   []*Series          `json:"series"`
	Counters map[string]float64 `json:"counters"`
}

// Snapshot returns a deep-enough copy for export (point slices are shared;
// treat the snapshot as read-only).
func (r *Recorder) Snapshot() Snapshot {
	out := Snapshot{Counters: make(map[string]float64, len(r.counters))}
	for _, name := range r.order {
		out.Series = append(out.Series, r.series[name])
	}
	for k, v := range r.counters {
		out.Counters[k] = v
	}
	return out
}

// WriteJSON emits the snapshot as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("metrics: write json: %w", err)
	}
	return nil
}

// ReadJSON reconstructs a Recorder from WriteJSON output. Series keep
// their recorded order (it is part of the canonical result encoding);
// counters are restored in sorted-name order, which is equally canonical
// because every consumer of counter values sorts by name. A recorder
// round-tripped through WriteJSON/ReadJSON therefore reproduces the exact
// canonical bytes of the original run — the property the content-addressed
// run store (internal/campaign) relies on to serve cache hits.
func ReadJSON(r io.Reader) (*Recorder, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("metrics: read json: %w", err)
	}
	rec := NewRecorder()
	for _, s := range snap.Series {
		if s == nil || s.Name == "" {
			return nil, fmt.Errorf("metrics: read json: unnamed series")
		}
		if _, ok := rec.series[s.Name]; ok {
			return nil, fmt.Errorf("metrics: read json: duplicate series %q", s.Name)
		}
		cp := &Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
		for i := 1; i < len(cp.Points); i++ {
			if cp.Points[i].T < cp.Points[i-1].T {
				return nil, fmt.Errorf("metrics: read json: series %q: non-monotone timestamps", s.Name)
			}
		}
		rec.series[s.Name] = cp
		rec.order = append(rec.order, s.Name)
	}
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec.counters[name] = snap.Counters[name]
		rec.corder = append(rec.corder, name)
	}
	return rec, nil
}

// Canonical metric names shared between the core simulator, strategies,
// and the benchmark harness. Keeping them here prevents drift between the
// producers and the experiment analysis code.
const (
	// SeriesAccuracy is the global model's test accuracy over time.
	SeriesAccuracy = "accuracy"
	// SeriesRoundExchanges is the per-round count of successful V2X model
	// exchanges (the bar series of the paper's Figure 4).
	SeriesRoundExchanges = "v2x_exchanges_per_round"
	// SeriesRoundContributions is the per-round count of model
	// contributions aggregated into the global model.
	SeriesRoundContributions = "contributions_per_round"
	// SeriesVehiclesOn tracks the number of powered-on vehicles.
	SeriesVehiclesOn = "vehicles_on"
	// CounterV2CBytes / CounterV2XBytes are delivered payload volumes.
	CounterV2CBytes = "v2c_bytes"
	CounterV2XBytes = "v2x_bytes"
	// CounterRounds counts completed strategy rounds.
	CounterRounds = "rounds_completed"
	// CounterTrainTasks counts completed local-training tasks.
	CounterTrainTasks = "train_tasks"
	// CounterDiscardedModels counts models lost to churn or range exits.
	CounterDiscardedModels = "discarded_models"
	// SeriesDistinctContributors tracks, per round, how many distinct
	// vehicles have ever contributed to the global model — the "provenance
	// of data" custom metric of §3 requirement 4.
	SeriesDistinctContributors = "distinct_contributors"

	// SeriesFaultsActive tracks the number of concurrently open fault
	// windows (blackouts, outages, burst-loss, ramps, churn storms),
	// recorded by the fault injector at every window boundary.
	SeriesFaultsActive = "faults_active"
	// CounterFaultBlackoutFails counts transfers failed in flight by a
	// scheduled coverage blackout (comm.ErrBlackout).
	CounterFaultBlackoutFails = "fault_blackout_failures"
	// CounterFaultBurstDrops counts transfers lost to burst-loss windows
	// (comm.ErrBurstDropped), as opposed to the channel's base drops.
	CounterFaultBurstDrops = "fault_burst_drops"
	// CounterFaultLinkKills counts in-flight transfers aborted by
	// scheduled link-kill events.
	CounterFaultLinkKills = "fault_link_kills"
	// CounterFaultForcedOff counts agents the fault injector powered off
	// (RSU outages and churn storms).
	CounterFaultForcedOff = "fault_forced_off"
)

// MovingAverage returns a copy of the series smoothed with a trailing
// window of k points. Useful for plotting the noisy per-round accuracy
// curves of highly skewed runs. Edge cases are total:
//   - a nil receiver returns an empty unnamed series, an empty series an
//     empty copy;
//   - k <= 1 (including zero and negative) returns an unsmoothed copy —
//     a window of at most one point is no smoothing at all;
//   - k > Len() clamps each window to the points available so far, so the
//     result is the prefix mean rather than an error or a short series.
func (s *Series) MovingAverage(k int) *Series {
	if s == nil {
		return &Series{}
	}
	out := &Series{Name: s.Name}
	if len(s.Points) == 0 {
		return out
	}
	if k <= 1 {
		out.Points = append([]Point(nil), s.Points...)
		return out
	}
	out.Points = make([]Point, len(s.Points))
	sum := 0.0
	for i, p := range s.Points {
		sum += p.Value
		if i >= k {
			sum -= s.Points[i-k].Value
		}
		window := k
		if i+1 < k {
			window = i + 1
		}
		out.Points[i] = Point{T: p.T, Value: sum / float64(window)}
	}
	return out
}
