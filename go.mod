module roadrunner

go 1.22
