// Package roadrunner is a discrete-event framework for evaluating
// distributed learning strategies in Vehicular Cyber-Physical Systems
// (VCPSs), reproducing the system proposed in:
//
//	Havers, Papatriantafilou, Koppisetty, Gulisano.
//	"Proposing a Framework for Evaluating Learning Strategies in
//	Vehicular CPSs." Middleware 2022 Industrial Track.
//	https://doi.org/10.1145/3564695.3564775
//
// The framework simulates a complete learning workflow in a VCPS: a fleet
// of vehicles with realistic spatial dynamics and ignition churn, a cloud
// server and optional road-side units, metered V2C and range-limited V2X
// communication channels, real on-device training of neural networks with
// hardware-calibrated durations, and pluggable learning strategies —
// centralized ML, Federated Averaging, the paper's opportunistic OPP,
// gossip learning, and hybrids — evaluated with fine-grained, timestamped
// metrics.
//
// # Quick start
//
//	cfg := roadrunner.SmallConfig()
//	strat, err := roadrunner.NewFederatedAveraging(roadrunner.DefaultFedAvgConfig())
//	if err != nil { ... }
//	exp, err := roadrunner.NewExperiment(cfg, strat)
//	if err != nil { ... }
//	res, err := exp.Run()
//	if err != nil { ... }
//	fmt.Println(res.FinalAccuracy)
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package roadrunner

import (
	"roadrunner/internal/comm"
	"roadrunner/internal/core"
	"roadrunner/internal/dataset"
	"roadrunner/internal/hw"
	"roadrunner/internal/metrics"
	"roadrunner/internal/ml"
	"roadrunner/internal/mobility"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
	"roadrunner/internal/strategy"
)

// Core experiment types.
type (
	// Config fully describes an experiment apart from the strategy.
	Config = core.Config
	// Experiment is one wired simulation run.
	Experiment = core.Experiment
	// Result bundles a run's outputs.
	Result = core.Result
)

// NewExperiment builds an experiment from a configuration and a strategy.
func NewExperiment(cfg Config, s Strategy) (*Experiment, error) { return core.New(cfg, s) }

// DefaultConfig reproduces the paper's §5.2 evaluation environment.
func DefaultConfig() Config { return core.DefaultConfig() }

// SmallConfig is a laptop-scale configuration for quick iteration.
func SmallConfig() Config { return core.SmallConfig() }

// Strategy types (the Learning Strategy Logic module).
type (
	// Strategy is one learning strategy's logic.
	Strategy = strategy.Strategy
	// Env is the framework API strategies program against.
	Env = strategy.Env
	// Payload is the strategy-level content of a transfer.
	Payload = strategy.Payload
	// BaseStrategy is a no-op Strategy for embedding in custom strategies.
	BaseStrategy = strategy.Base

	// FedAvgConfig parameterizes the FL baseline (the paper's BASE).
	FedAvgConfig = strategy.FedAvgConfig
	// OppConfig parameterizes the paper's OPP strategy.
	OppConfig = strategy.OppConfig
	// GossipConfig parameterizes gossip learning.
	GossipConfig = strategy.GossipConfig
	// CentralizedConfig parameterizes the centralized-ML baseline.
	CentralizedConfig = strategy.CentralizedConfig
	// HybridConfig parameterizes the gossip+FL hybrid.
	HybridConfig = strategy.HybridConfig
	// RSUAssistedConfig parameterizes RSU-collected FL.
	RSUAssistedConfig = strategy.RSUAssistedConfig

	// FederatedAveraging is the paper's BASE strategy.
	FederatedAveraging = strategy.FederatedAveraging
	// Opportunistic is the paper's OPP strategy.
	Opportunistic = strategy.Opportunistic
	// Gossip is decentralized gossip learning.
	Gossip = strategy.Gossip
	// Centralized is the raw-data-upload baseline.
	Centralized = strategy.Centralized
	// Hybrid composes gossip with periodic FL synchronization.
	Hybrid = strategy.Hybrid
	// RSUAssisted is FL collected by road-side units over V2X + wire.
	RSUAssisted = strategy.RSUAssisted
)

// Strategy constructors and their paper-default configurations.
var (
	NewFederatedAveraging = strategy.NewFederatedAveraging
	NewOpportunistic      = strategy.NewOpportunistic
	NewGossip             = strategy.NewGossip
	NewCentralized        = strategy.NewCentralized
	NewHybrid             = strategy.NewHybrid
	NewRSUAssisted        = strategy.NewRSUAssisted

	DefaultFedAvgConfig      = strategy.DefaultFedAvgConfig
	DefaultOppConfig         = strategy.DefaultOppConfig
	DefaultGossipConfig      = strategy.DefaultGossipConfig
	DefaultCentralizedConfig = strategy.DefaultCentralizedConfig
	DefaultHybridConfig      = strategy.DefaultHybridConfig
	DefaultRSUAssistedConfig = strategy.DefaultRSUAssistedConfig
)

// Simulation primitives.
type (
	// Time is an instant in simulated seconds.
	Time = sim.Time
	// Duration is a span of simulated seconds.
	Duration = sim.Duration
	// AgentID identifies a simulated agent.
	AgentID = sim.AgentID
	// RNG is a deterministic random stream.
	RNG = sim.RNG
)

// NewRNG returns a deterministic random stream.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// Machine-learning substrate.
type (
	// ModelSpec describes a network architecture.
	ModelSpec = ml.Spec
	// TrainConfig bundles local-training hyperparameters.
	TrainConfig = ml.TrainConfig
	// ModelSnapshot is an immutable copy of model weights.
	ModelSnapshot = ml.Snapshot
	// Example is one labelled training/test instance.
	Example = ml.Example
)

// Model-architecture builders and Federated Averaging.
var (
	// MLPSpec builds a multi-layer perceptron architecture.
	MLPSpec = ml.MLPSpec
	// CNNSpec builds the paper's 2-conv/3-FC CNN architecture.
	CNNSpec = ml.CNNSpec
	// FedAvg aggregates snapshots by data-amount-weighted averaging.
	FedAvg = ml.FedAvg
)

// Environment substrate configuration.
type (
	// GridConfig describes the synthetic road network.
	GridConfig = roadnet.GridConfig
	// FleetConfig describes synthetic fleet dynamics.
	FleetConfig = mobility.GenConfig
	// TraceSet bundles a fleet's recorded trajectories.
	TraceSet = mobility.TraceSet
	// CommParams models the V2C/V2X/wired channels.
	CommParams = comm.Params
	// CommMessage is one simulated transfer (delivered to strategies).
	CommMessage = comm.Message
	// CommStats aggregates per-channel volume metrics.
	CommStats = comm.Stats
	// DataConfig describes the synthetic learning problem.
	DataConfig = dataset.Config
	// PartitionConfig describes how data distributes over vehicles.
	PartitionConfig = dataset.PartitionConfig
	// HardwareProfile describes a hardware-unit class.
	HardwareProfile = hw.Profile
	// MetricsRecorder accumulates an experiment's measurements.
	MetricsRecorder = metrics.Recorder
	// MetricSeries is a named, timestamped measurement sequence.
	MetricSeries = metrics.Series
)

// Canonical metric names (see internal/metrics for the full list).
const (
	SeriesAccuracy             = metrics.SeriesAccuracy
	SeriesRoundExchanges       = metrics.SeriesRoundExchanges
	SeriesRoundContributions   = metrics.SeriesRoundContributions
	SeriesVehiclesOn           = metrics.SeriesVehiclesOn
	SeriesDistinctContributors = metrics.SeriesDistinctContributors
	CounterRounds              = metrics.CounterRounds
	CounterTrainTasks          = metrics.CounterTrainTasks
	CounterDiscardedModels     = metrics.CounterDiscardedModels
)

// Data-partition schemes.
const (
	SchemeIID       = dataset.SchemeIID
	SchemeShards    = dataset.SchemeShards
	SchemeDirichlet = dataset.SchemeDirichlet
)

// Communication channel kinds.
const (
	KindV2C   = comm.KindV2C
	KindV2X   = comm.KindV2X
	KindWired = comm.KindWired
)

// GenerateTraces produces a synthetic fleet trace set on a generated road
// network — the stand-in for the paper's proprietary GPS dataset. Write it
// with WriteTracesCSV and replay it via Config.TraceFile.
func GenerateTraces(grid GridConfig, fleet FleetConfig, seed uint64) (*TraceSet, error) {
	root := sim.NewRNG(seed)
	g, err := roadnet.Generate(grid, root.Fork("roadnet"))
	if err != nil {
		return nil, err
	}
	return mobility.Generate(fleet, g, root.Fork("mobility"))
}

// WriteTracesCSV and ReadTracesCSV expose the framework's GPS-trace format.
var (
	WriteTracesCSV = mobility.WriteCSV
	ReadTracesCSV  = mobility.ReadCSV
)
