# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: build vet test race lint lint-baseline bench bench-check bench-scale bench-scale-check bench-queue bench-queue-check trace-demo ablation-h cover e2e e2e-cluster ci

# COVER_FLOOR is the minimum total statement coverage; measured at 79.7%
# when the floor was introduced, with a small margin for platform noise.
COVER_FLOOR ?= 78.0

build:
	$(GO) build ./...

# bench writes the tracked throughput report (BENCH_fig4.json) with the
# embedded pre-optimisation baseline alongside the current measurement.
bench:
	$(GO) run ./cmd/bench -rounds 2 -seeds 3 -out BENCH_fig4.json

# bench-check re-measures and fails on a >5% simsec/wallsec regression
# against the tracked report — the gate that keeps the span tracer (and
# anything else) off the tracing-disabled hot path. The reference is read
# before the report file is rewritten, so checking against the same path
# the run overwrites is safe.
bench-check:
	$(GO) run ./cmd/bench -rounds 2 -seeds 3 -out BENCH_fig4.json -check BENCH_fig4.json -tol 5

# bench-scale measures the fleet-size scaling curve (constant-density
# megacity workload at 50/500/5k/50k vehicles) and rewrites the tracked
# BENCH_scale.json, including the measured O(n²) reference anchor the
# speedup columns extrapolate from.
bench-scale:
	$(GO) run ./cmd/bench -scale 50,500,5000,50000 -scale-out BENCH_scale.json

# bench-scale-check re-measures the cheap 500-vehicle point (median of
# five runs) and fails on a >8% simsec/wallsec regression against the tracked
# curve — wider than the Figure-4 gate because the point finishes in tens
# of milliseconds, where shared-host noise is proportionally larger. The
# 50k point is exercised separately (short horizon, ungated) so city-scale
# code paths still run on every CI pass.
bench-scale-check:
	$(GO) run ./cmd/bench -scale 500 -scale-out /tmp/BENCH_scale_smoke.json -scale-check BENCH_scale.json -tol 8
	$(GO) run ./cmd/bench -scale 50000 -scale-horizon 60 -scale-out /tmp/BENCH_scale_50k.json

# bench-queue measures the cluster queue protocol and rewrites the
# tracked BENCH_queue.json: batched lease verbs vs per-run verbs, and
# snapshot+tail replay vs full-log replay.
bench-queue:
	$(GO) run ./cmd/bench -queue -queue-out BENCH_queue.json

# bench-queue-check re-measures and fails unless both optimization
# ratios — batched-verb throughput and snapshot replay reduction — still
# clear a 10x floor. Ratios are measured single-host, so the gate holds
# on shared CI where raw fsync rates would be too noisy to compare.
bench-queue-check:
	$(GO) run ./cmd/bench -queue -queue-out BENCH_queue.json -queue-check BENCH_queue.json -queue-min-ratio 10

# trace-demo writes the sample observability artifact: Chrome trace_event
# JSON + canonical CSV span timelines for a BASE and an OPP run.
trace-demo:
	$(GO) run ./cmd/figures -fig T -out results

# ablation-h regenerates the tracked channel-model ablation: BASE and OPP
# under analytic, radio, radio+queued, and a fitted oracle channel,
# exercising the record -> chanfit -> replay pipeline end to end.
ablation-h:
	$(GO) run ./cmd/figures -fig H -out results

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the whole determinism suite against the tracked baseline; the
# intended steady state is an empty lint.baseline, so any finding is new.
lint:
	$(GO) run ./cmd/roadlint -baseline lint.baseline ./...

# lint-baseline re-captures current findings as accepted debt. Use it only
# mid-cleanup: the baseline is a ratchet, not a dumping ground.
lint-baseline:
	$(GO) run ./cmd/roadlint -baseline lint.baseline -update-baseline ./...

# cover writes coverage.out and fails if total statement coverage drops
# below COVER_FLOOR.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t=$$total -v floor=$(COVER_FLOOR) 'BEGIN { \
		if (t + 0 < floor) { printf "coverage %.1f%% is below the %.1f%% floor\n", t, floor; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, floor }'

# e2e smoke-tests the campaign service over real HTTP: cold campaign
# executes, identical resubmission is 100% cache hits with byte-identical
# served results. Ends with the cluster scenario (e2e-cluster) unless
# E2E_SKIP_CLUSTER=1.
e2e:
	./scripts/e2e_smoke.sh

# e2e-cluster starts a coordinator plus three worker processes, SIGKILLs
# one worker holding claims mid-campaign, and asserts the cluster
# recovers with a merged result byte-identical to a single-node run.
e2e-cluster:
	./scripts/e2e_cluster.sh

ci: build vet test race lint cover e2e
