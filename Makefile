# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: build vet test race lint bench ci

build:
	$(GO) build ./...

# bench writes the tracked throughput report (BENCH_fig4.json) with the
# embedded pre-optimisation baseline alongside the current measurement.
bench:
	$(GO) run ./cmd/bench -rounds 2 -seeds 3 -out BENCH_fig4.json

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/roadlint ./...

ci: build vet test race lint
