# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: build vet test race lint ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/roadlint ./...

ci: build vet test race lint
