// Benchmark harness for the paper's evaluation (DESIGN.md experiment
// index): one benchmark per figure/ablation, each running the genuine
// experiment at reduced round count and reporting the figure's headline
// numbers as custom benchmark metrics. Regenerate the full-scale figures
// with cmd/figures.
package roadrunner_test

import (
	"testing"

	"strconv"

	"roadrunner/internal/dataset"
	"roadrunner/internal/repro"
	"roadrunner/internal/sim"
)

// benchRounds keeps per-iteration cost around a second; the full paper
// experiment uses 75 rounds (see cmd/figures -fig 4 -rounds 75).
const benchRounds = 5

// BenchmarkFig4BASE runs the paper's baseline: vanilla FL, 5 vehicles per
// 30 s round (Figure 4, blue curve).
func BenchmarkFig4BASE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig4Base(benchRounds, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(repro.LateAccuracy(res, 3), "accuracy")
		b.ReportMetric(float64(res.End)/float64(benchRounds), "simsec/round")
	}
}

// BenchmarkFig4OPP runs the paper's opportunistic strategy: 5 reporters per
// 200 s round with V2X forwarding (Figure 4, red curve + bars).
func BenchmarkFig4OPP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig4Opp(benchRounds, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(repro.LateAccuracy(res, 3), "accuracy")
		if ex := res.Metrics.Series("v2x_exchanges_per_round"); ex != nil {
			b.ReportMetric(ex.Mean(), "v2x-exch/round")
		}
		b.ReportMetric(float64(res.End)/float64(benchRounds), "simsec/round")
	}
}

// BenchmarkAblationRoundDuration sweeps OPP's round timer (ablation A).
func BenchmarkAblationRoundDuration(b *testing.B) {
	for _, d := range []sim.Duration{50, 400} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := repro.AblationRoundDuration(3, uint64(i+1), []sim.Duration{d})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].AvgExchanges, "v2x-exch/round")
				b.ReportMetric(rows[0].FinalAcc, "accuracy")
			}
		})
	}
}

// BenchmarkAblationReporters sweeps the per-round reporter count
// (ablation B).
func BenchmarkAblationReporters(b *testing.B) {
	for _, r := range []int{2, 10} {
		r := r
		b.Run(benchName("R", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := repro.AblationReporters(3, uint64(i+1), []int{r})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].V2CMB, "v2c-MB")
				b.ReportMetric(rows[0].FinalAcc, "accuracy")
			}
		})
	}
}

// BenchmarkAblationV2XRange sweeps the V2X radio range (ablation C).
func BenchmarkAblationV2XRange(b *testing.B) {
	for _, rangeM := range []float64{50, 400} {
		rangeM := rangeM
		b.Run(benchName("m", int(rangeM)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := repro.AblationV2XRange(3, uint64(i+1), []float64{rangeM})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].AvgExchanges, "v2x-exch/round")
			}
		})
	}
}

// BenchmarkAblationSkew sweeps the per-vehicle class distribution
// (ablation D), running BASE and OPP per point.
func BenchmarkAblationSkew(b *testing.B) {
	sweeps := map[string]dataset.PartitionConfig{
		"shards1": {Scheme: dataset.SchemeShards, PerAgent: 80, ShardsPerAgent: 1},
		"iid":     {Scheme: dataset.SchemeIID, PerAgent: 80},
	}
	for name, pc := range sweeps {
		pc := pc
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := repro.AblationSkew(3, uint64(i+1), []dataset.PartitionConfig{pc})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(points[0].BaseAcc, "base-accuracy")
				b.ReportMetric(points[0].OppAcc, "opp-accuracy")
			}
		})
	}
}

// BenchmarkAblationChurn sweeps ignition churn (ablation E).
func BenchmarkAblationChurn(b *testing.B) {
	for _, p := range []float64{0, 0.8} {
		p := p
		b.Run(benchName("poff", int(p*10)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := repro.AblationChurn(3, uint64(i+1), []float64{p})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].Discarded, "discarded")
			}
		})
	}
}

// BenchmarkExperimentThroughput measures raw simulation throughput
// (events/second of host time) on the laptop-scale configuration —
// the paper's requirement 6 ("quick execution ... significant speed-up
// over an experiment in a real VCPS").
func BenchmarkExperimentThroughput(b *testing.B) {
	events := uint64(0)
	simSeconds := 0.0
	for i := 0; i < b.N; i++ {
		out, err := repro.Fig4(2, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		events += out.Base.EventsProcessed + out.Opp.EventsProcessed
		simSeconds += float64(out.BaseEnd) + float64(out.OppEnd)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(simSeconds/b.Elapsed().Seconds(), "simsec/wallsec")
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
