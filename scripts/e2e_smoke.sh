#!/usr/bin/env bash
# End-to-end smoke test for the campaign orchestration service: builds
# roadrunnerd, starts it against a throwaway store, submits a two-run
# laptop-scale campaign over HTTP, polls it to completion, and then
# resubmits the identical manifest asserting the warm pass is 100% cache
# hits — zero fresh executions, zero additional simulation events, and
# byte-identical served results.
set -euo pipefail

ADDR="${ROADRUNNERD_ADDR:-127.0.0.1:8383}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
# kill 0 would signal the whole process group, so guard the unset/cleared case.
trap '[ "${SERVER_PID:-0}" -gt 0 ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() { echo "e2e: FAIL: $*" >&2; exit 1; }

go build -o "$WORK/roadrunnerd" ./cmd/roadrunnerd
"$WORK/roadrunnerd" -addr "$ADDR" -store "$WORK/store" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/server.log" >&2; fail "server exited early"; }
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || fail "server never became healthy"

MANIFEST='{"name":"ci-smoke","env":"tiny","rounds":2,"strategies":[{"kind":"fedavg"},{"kind":"opp"}],"seeds":[1]}'

# submit_campaign BODY -> campaign id on stdout
submit_campaign() {
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$1" "$BASE/v1/campaigns" \
        | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"id": *"\([^"]*\)".*/\1/'
}

# poll_done ID FILE: polls until the campaign reports done, saving the
# final status JSON to FILE.
poll_done() {
    local id="$1" out="$2"
    for _ in $(seq 1 300); do
        curl -fsS "$BASE/v1/campaigns/$id" >"$out"
        grep -q '"done": *true' "$out" && return 0
        sleep 0.2
    done
    cat "$out" >&2
    fail "campaign $id did not finish"
}

metric() { curl -fsS "$BASE/metrics" | awk -v m="$1" '$1 == m {print $2}'; }

# --- Cold pass: both runs execute. -----------------------------------------
COLD_ID="$(submit_campaign "$MANIFEST")"
[ -n "$COLD_ID" ] || fail "cold submission returned no campaign id"
poll_done "$COLD_ID" "$WORK/cold.json"
grep -q '"completed": *2' "$WORK/cold.json" || { cat "$WORK/cold.json" >&2; fail "cold pass did not complete 2 runs"; }
grep -q '"failed": *0' "$WORK/cold.json" || fail "cold pass reported failures"

EXECUTED="$(metric roadrunnerd_runs_executed_total)"
[ "$EXECUTED" = "2" ] || fail "cold executed_total=$EXECUTED, want 2"
SIM_EVENTS="$(metric roadrunnerd_sim_events_total)"
[ "${SIM_EVENTS%.*}" -gt 0 ] || fail "cold pass processed no simulation events"

KEYS="$(grep -o '"key": *"[a-f0-9]\{64\}"' "$WORK/cold.json" | sed 's/.*"\([a-f0-9]\{64\}\)"/\1/' | sort -u)"
[ "$(echo "$KEYS" | wc -l)" = "2" ] || fail "expected 2 distinct run keys"
i=0
for key in $KEYS; do
    i=$((i + 1))
    curl -fsS "$BASE/v1/runs/$key" >"$WORK/cold-run-$i.txt"
    [ -s "$WORK/cold-run-$i.txt" ] || fail "empty canonical bytes for $key"
done

# --- Warm pass: identical manifest, all cache hits. ------------------------
WARM_ID="$(submit_campaign "$MANIFEST")"
[ "$WARM_ID" != "$COLD_ID" ] || fail "resubmission reused the cold campaign id"
poll_done "$WARM_ID" "$WORK/warm.json"
grep -q '"cached": *2' "$WORK/warm.json" || { cat "$WORK/warm.json" >&2; fail "warm pass was not 100% cache hits"; }

[ "$(metric roadrunnerd_runs_executed_total)" = "$EXECUTED" ] || fail "warm pass executed fresh runs"
[ "$(metric roadrunnerd_sim_events_total)" = "$SIM_EVENTS" ] || fail "warm pass executed simulation events"
[ "$(metric roadrunnerd_runs_cached_total)" = "2" ] || fail "warm cached_total != 2"

i=0
for key in $KEYS; do
    i=$((i + 1))
    curl -fsS "$BASE/v1/runs/$key" >"$WORK/warm-run-$i.txt"
    cmp -s "$WORK/cold-run-$i.txt" "$WORK/warm-run-$i.txt" || fail "warm bytes for $key differ from cold bytes"
done

echo "e2e: OK — cold pass executed $EXECUTED runs ($SIM_EVENTS sim events), warm pass served both from cache byte-identically"

# --- Multi-node cluster scenario. ------------------------------------------
# Three workers, one SIGKILLed mid-campaign; the cluster must recover and
# produce a merged result byte-identical to a single-node reference. Set
# E2E_SKIP_CLUSTER=1 to run only the single-node smoke (CI runs the
# cluster scenario as its own job).
if [ "${E2E_SKIP_CLUSTER:-0}" != "1" ]; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=0
    "$(dirname "$0")/e2e_cluster.sh"
fi
