#!/usr/bin/env bash
# End-to-end cluster test: starts a roadrunnerd coordinator plus three
# worker processes sharing one durable store, submits an eight-run
# campaign through roadctl, SIGKILLs one worker while it holds claims
# mid-campaign, and asserts the cluster recovers — the campaign finishes
# with zero failures, the dead node is reported dead, and the merged
# canonical result is byte-identical to a single-node reference run.
#
# The coordinator runs with an aggressive snapshot-compaction threshold
# and an admission cap, so the scenario additionally asserts that
# compaction publishes a snapshot and rotates the log onto a generation
# marker mid-campaign, and that a manifest larger than the admission cap
# is rejected with backpressure while a fitting one is still admitted
# afterwards. A second coordinator with the (quiescent) default
# compaction threshold then replays the same manifest so the un-rotated
# queue log can prove the batched protocol end to end: enqueue-batch /
# claim-batch / start-batch / complete-batch records on disk, merged
# result again byte-identical to the single-node reference. (Under the
# aggressive threshold those records are compacted away within the same
# locked call that crosses the threshold, so only a quiescent log can
# assert them deterministically.)
#
# Wall-clock sleeps here are host-side polling at the service edge; the
# lease protocol itself runs on the coordinator's logical tick clock and
# is exercised deterministically by internal/cluster/chaostest.
set -euo pipefail

REF_ADDR="${ROADRUNNERD_REF_ADDR:-127.0.0.1:8399}"
CO_ADDR="${ROADRUNNERD_CLUSTER_ADDR:-127.0.0.1:8400}"
BATCH_ADDR="${ROADRUNNERD_BATCH_ADDR:-127.0.0.1:8401}"
REF_BASE="http://$REF_ADDR"
CO_BASE="http://$CO_ADDR"
BATCH_BASE="http://$BATCH_ADDR"
WORK="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

fail() { echo "e2e-cluster: FAIL: $*" >&2; exit 1; }

go build -o "$WORK/roadrunnerd" ./cmd/roadrunnerd
go build -o "$WORK/roadctl" ./cmd/roadctl

# Eight runs: enough that one worker cannot finish the campaign before
# we kill it, few enough to stay laptop-fast.
MANIFEST='{"name":"ci-cluster","env":"tiny","rounds":2,"strategies":[{"kind":"fedavg"},{"kind":"opp"}],"seeds":[1,2,3,4]}'

wait_healthy() { # wait_healthy BASE PID LOG
    local base="$1" pid="$2" log="$3"
    for _ in $(seq 1 100); do
        curl -fsS "$base/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; fail "server exited early"; }
        sleep 0.1
    done
    cat "$log" >&2
    fail "server at $base never became healthy"
}

extract_id() { grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"id": *"\([^"]*\)".*/\1/'; }

# --- Reference: the same manifest on a classic single-node server. ---------
"$WORK/roadrunnerd" -addr "$REF_ADDR" -store "$WORK/refstore" >"$WORK/ref.log" 2>&1 &
REF_PID=$!; PIDS+=("$REF_PID")
wait_healthy "$REF_BASE" "$REF_PID" "$WORK/ref.log"

REF_ID="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$MANIFEST" "$REF_BASE/v1/campaigns" | extract_id)"
[ -n "$REF_ID" ] || fail "reference submission returned no campaign id"
for _ in $(seq 1 300); do
    curl -fsS "$REF_BASE/v1/campaigns/$REF_ID" >"$WORK/ref.json"
    grep -q '"done": *true' "$WORK/ref.json" && break
    sleep 0.2
done
grep -q '"done": *true' "$WORK/ref.json" || fail "reference campaign never finished"
grep -q '"failed": *0' "$WORK/ref.json" || fail "reference campaign reported failures"
curl -fsS "$REF_BASE/v1/campaigns/$REF_ID/result" >"$WORK/reference.bytes"
[ -s "$WORK/reference.bytes" ] || fail "empty reference merged result"
kill "$REF_PID"; wait "$REF_PID" 2>/dev/null || true

# --- Cluster: coordinator + workers on a fresh shared store. ---------------
# A 100ms tick keeps lease expiry (10 ticks = 1s) well under the poll
# budget while staying above the workers' 500ms heartbeat interval, so
# live workers never flap dead between heartbeats.
# -compact-every 16 forces at least one snapshot compaction inside the
# ~32-entry campaign; -max-outstanding 8 admits the 8-run manifest
# exactly and rejects anything larger.
"$WORK/roadrunnerd" -addr "$CO_ADDR" -cluster -policy config-affinity \
    -tick 100ms -lease-ttl 10 -steal-after 2 -workers 1 \
    -compact-every 16 -max-outstanding 8 \
    -store "$WORK/store" >"$WORK/coordinator.log" 2>&1 &
CO_PID=$!; PIDS+=("$CO_PID")
wait_healthy "$CO_BASE" "$CO_PID" "$WORK/coordinator.log"

start_worker() { # start_worker NAME CAPACITY -> pid
    "$WORK/roadrunnerd" -join "$CO_BASE" -node "$1" -capacity "$2" \
        -store "$WORK/store" >"$WORK/$1.log" 2>&1 &
    PIDS+=("$!")
    echo "$!"
}

# Only w2 is up at submission time, so it claims a backlog (capacity 4
# under config-affinity) and is guaranteed to hold live claims when we
# kill it after its first completion.
W2_PID="$(start_worker w2 4)"

ID="$("$WORK/roadctl" -addr "$CO_BASE" submit -f <(printf '%s' "$MANIFEST") | extract_id)"
[ -n "$ID" ] || fail "cluster submission returned no campaign id"

for _ in $(seq 1 200); do
    grep -q "worker w2: done" "$WORK/w2.log" && break
    kill -0 "$W2_PID" 2>/dev/null || { cat "$WORK/w2.log" >&2; fail "worker w2 exited before completing a run"; }
    sleep 0.1
done
grep -q "worker w2: done" "$WORK/w2.log" || { cat "$WORK/w2.log" >&2; fail "worker w2 never completed a run"; }

# SIGKILL: no drain, no deregistration — w2 dies holding claims. Its
# leases must expire and the runs must be re-issued to the survivors.
kill -9 "$W2_PID"

start_worker w1 2 >/dev/null
start_worker w3 2 >/dev/null

for _ in $(seq 1 300); do
    "$WORK/roadctl" -addr "$CO_BASE" status "$ID" >"$WORK/cluster.json" 2>/dev/null || true
    grep -q '"done": *true' "$WORK/cluster.json" && break
    sleep 0.2
done
grep -q '"done": *true' "$WORK/cluster.json" || { cat "$WORK/cluster.json" "$WORK/coordinator.log" >&2; fail "cluster campaign never finished after worker kill"; }
grep -q '"failed": *0' "$WORK/cluster.json" || { cat "$WORK/cluster.json" >&2; fail "cluster campaign reported failures"; }

# The fleet view must eventually show the killed node dead (its
# heartbeats stopped, so it dies one lease TTL after its last contact)
# while both survivors stay alive.
for _ in $(seq 1 100); do
    "$WORK/roadctl" -addr "$CO_BASE" nodes >"$WORK/nodes.json"
    grep -A1 '"name": *"w2"' "$WORK/nodes.json" | grep -q '"alive": *false' && break
    sleep 0.1
done
grep -q '"name": *"w2"' "$WORK/nodes.json" || fail "killed node missing from fleet view"
grep -A1 '"name": *"w2"' "$WORK/nodes.json" | grep -q '"alive": *false' \
    || { cat "$WORK/nodes.json" >&2; fail "killed node never declared dead"; }
SURVIVORS="$(grep -c '"alive": *true' "$WORK/nodes.json" || true)"
[ "$SURVIVORS" = "2" ] || { cat "$WORK/nodes.json" >&2; fail "expected 2 alive survivors, saw $SURVIVORS"; }

# The merged artifact must match the single-node reference byte for byte.
"$WORK/roadctl" -addr "$CO_BASE" result -o "$WORK/cluster.bytes" "$ID"
cmp -s "$WORK/reference.bytes" "$WORK/cluster.bytes" \
    || fail "cluster merged result differs from single-node reference ($(wc -c <"$WORK/reference.bytes") vs $(wc -c <"$WORK/cluster.bytes") bytes)"

# --- Snapshot compaction evidence. -----------------------------------------
# The ~32-entry campaign crossed the 16-entry threshold at least once:
# a snapshot must exist and the live log must start at its generation.
QUEUE_LOG="$WORK/store/cluster/queue.jsonl"
SNAP="$WORK/store/cluster/queue.snap.jsonl"
[ -s "$SNAP" ] || fail "compaction never published a queue snapshot"
grep -q '"op":"snap-begin"' "$SNAP" || fail "queue snapshot lacks its snap-begin header"
grep -q '"op":"snap-end"' "$SNAP" || fail "queue snapshot lacks its snap-end trailer"
head -1 "$QUEUE_LOG" | grep -q '"op":"gen"' \
    || { head -1 "$QUEUE_LOG" >&2; fail "rotated queue log does not start with its generation marker"; }

# --- Admission backpressure. -----------------------------------------------
# Ten fresh runs exceed the cap of 8: the submit must be rejected with
# 429 backpressure (-wait=false surfaces it instead of retrying).
BIG='{"name":"ci-overflow","env":"tiny","rounds":2,"strategies":[{"kind":"fedavg"},{"kind":"opp"}],"seeds":[11,12,13,14,15]}'
if "$WORK/roadctl" -addr "$CO_BASE" submit -wait=false -f <(printf '%s' "$BIG") >"$WORK/big.out" 2>&1; then
    cat "$WORK/big.out" >&2
    fail "manifest larger than -max-outstanding was admitted"
fi
grep -qi "backlog\|429" "$WORK/big.out" \
    || { cat "$WORK/big.out" >&2; fail "over-cap rejection did not cite backpressure"; }

# A fitting manifest is still admitted after the rejection and completes
# cleanly — rejection has no durable side effects.
SMALL='{"name":"ci-fits","env":"tiny","rounds":2,"strategies":[{"kind":"fedavg"},{"kind":"opp"}],"seeds":[11]}'
ID2="$("$WORK/roadctl" -addr "$CO_BASE" submit -f <(printf '%s' "$SMALL") | extract_id)"
[ -n "$ID2" ] || fail "fitting manifest rejected after backpressure"
for _ in $(seq 1 300); do
    "$WORK/roadctl" -addr "$CO_BASE" status "$ID2" >"$WORK/small.json" 2>/dev/null || true
    grep -q '"done": *true' "$WORK/small.json" && break
    sleep 0.2
done
grep -q '"done": *true' "$WORK/small.json" || { cat "$WORK/small.json" >&2; fail "post-backpressure campaign never finished"; }
grep -q '"failed": *0' "$WORK/small.json" || { cat "$WORK/small.json" >&2; fail "post-backpressure campaign reported failures"; }

# --- Batched protocol evidence (quiescent log). ----------------------------
# A fresh coordinator at the default compaction threshold never rotates
# a campaign this small, so its queue log retains every record: the
# batched verbs the coordinator and worker actually spoke. Under the
# aggressive threshold above this cannot be asserted — a record whose
# append crosses the threshold is compacted away within the same call.
"$WORK/roadrunnerd" -addr "$BATCH_ADDR" -cluster -policy config-affinity \
    -tick 100ms -lease-ttl 10 -steal-after 2 -workers 1 \
    -store "$WORK/batchstore" >"$WORK/batchco.log" 2>&1 &
BATCH_PID=$!; PIDS+=("$BATCH_PID")
wait_healthy "$BATCH_BASE" "$BATCH_PID" "$WORK/batchco.log"

"$WORK/roadrunnerd" -join "$BATCH_BASE" -node b1 -capacity 4 \
    -store "$WORK/batchstore" >"$WORK/b1.log" 2>&1 &
PIDS+=("$!")

BID="$("$WORK/roadctl" -addr "$BATCH_BASE" submit -f <(printf '%s' "$MANIFEST") | extract_id)"
[ -n "$BID" ] || fail "batch-evidence submission returned no campaign id"
for _ in $(seq 1 300); do
    "$WORK/roadctl" -addr "$BATCH_BASE" status "$BID" >"$WORK/batch.json" 2>/dev/null || true
    grep -q '"done": *true' "$WORK/batch.json" && break
    sleep 0.2
done
grep -q '"done": *true' "$WORK/batch.json" || { cat "$WORK/batch.json" "$WORK/batchco.log" >&2; fail "batch-evidence campaign never finished"; }
grep -q '"failed": *0' "$WORK/batch.json" || { cat "$WORK/batch.json" >&2; fail "batch-evidence campaign reported failures"; }

BATCH_LOG="$WORK/batchstore/cluster/queue.jsonl"
for op in enqueue-batch claim-batch start-batch complete-batch; do
    grep -q "\"op\":\"$op\"" "$BATCH_LOG" \
        || { cat "$BATCH_LOG" >&2; fail "queue log never recorded a $op record"; }
done
[ -e "$WORK/batchstore/cluster/queue.snap.jsonl" ] \
    && fail "default-threshold coordinator compacted a 32-entry log"

# Byte-identity holds through the purely batched, never-compacted path too.
"$WORK/roadctl" -addr "$BATCH_BASE" result -o "$WORK/batch.bytes" "$BID"
cmp -s "$WORK/reference.bytes" "$WORK/batch.bytes" \
    || fail "batched-protocol merged result differs from single-node reference"

echo "e2e-cluster: OK — campaign $ID survived a SIGKILLed worker; merged results byte-identical to single-node reference ($(wc -c <"$WORK/cluster.bytes") bytes) through both the compacting and the quiescent batched-protocol paths; snapshot compaction and admission backpressure verified"
