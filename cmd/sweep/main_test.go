package main

import (
	"math"
	"testing"
)

func TestBuildStrategyNames(t *testing.T) {
	for name, want := range map[string]string{
		"fedavg":      "fedavg",
		"base":        "fedavg",
		"opp":         "opportunistic",
		"gossip":      "gossip",
		"centralized": "centralized",
		"hybrid":      "hybrid",
		"rsu":         "rsu-assisted",
	} {
		s, err := buildStrategy(name, 5)
		if err != nil {
			t.Fatalf("buildStrategy(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Fatalf("buildStrategy(%q).Name() = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := buildStrategy("nope", 5); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 6})
	if mean != 4 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-math.Sqrt(8.0/3)) > 1e-12 {
		t.Fatalf("std = %v", std)
	}
	mean, std = meanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatalf("empty meanStd = %v, %v", mean, std)
	}
}

func TestMinMaxOf(t *testing.T) {
	vals := []float64{3, -1, 7}
	if minOf(vals) != -1 {
		t.Fatalf("min = %v", minOf(vals))
	}
	if maxOf(vals) != 7 {
		t.Fatalf("max = %v", maxOf(vals))
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := effectiveWorkers(0, 5); got != 5 {
		t.Fatalf("effectiveWorkers(0,5) = %d", got)
	}
	if got := effectiveWorkers(8, 3); got != 3 {
		t.Fatalf("effectiveWorkers(8,3) = %d", got)
	}
	if got := effectiveWorkers(2, 5); got != 2 {
		t.Fatalf("effectiveWorkers(2,5) = %d", got)
	}
}
