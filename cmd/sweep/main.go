// Command sweep runs a learning strategy across multiple seeds in
// parallel and reports the distribution of outcomes — implementing the
// paper's future-work item of "increasing the parallelism of the
// simulation to speed up learning strategy development iterations".
//
// Usage:
//
//	sweep -strategy opp -seeds 8 -rounds 20 [-small] [-workers N] [-cache DIR]
//
// Each seed's run is fully deterministic; parallelism is across runs.
// Sweeps are declared as a campaign manifest and submitted through the
// campaign scheduler (internal/campaign) — the same engine behind
// cmd/roadrunnerd — so passing -cache gives the sweep a durable
// content-addressed result store: repeating a sweep serves finished seeds
// byte-identically without re-executing them.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"roadrunner/internal/campaign"
	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
	"roadrunner/internal/repro"
	"roadrunner/internal/strategy"
	"roadrunner/internal/textplot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	stratName := flag.String("strategy", "fedavg", "strategy: fedavg, opp, gossip, centralized, hybrid, rsu")
	seeds := flag.Int("seeds", 8, "number of seeds (1..N)")
	rounds := flag.Int("rounds", 10, "rounds per run (for round-based strategies)")
	small := flag.Bool("small", false, "use the laptop-scale environment")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "durable result store directory (empty = run uncached)")
	flag.Parse()

	if *seeds <= 0 {
		return fmt.Errorf("need at least one seed")
	}
	// Validate the strategy name before launching the fleet.
	if _, err := buildStrategy(*stratName, *rounds); err != nil {
		return err
	}

	env := campaign.EnvDefault
	base := core.DefaultConfig()
	if *small {
		env = campaign.EnvSmall
		base = core.SmallConfig()
	}
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	m := campaign.Manifest{
		Name:       fmt.Sprintf("sweep-%s", *stratName),
		Env:        env,
		Rounds:     *rounds,
		Strategies: []campaign.StrategySpec{{Kind: *stratName}},
		Seeds:      seedList,
	}
	if *stratName == "rsu" && base.RSUCount == 0 {
		rsus := 8
		m.Overrides = []campaign.Override{{Name: "rsu8", RSUCount: &rsus}}
	}
	specs, err := m.Expand()
	if err != nil {
		return err
	}
	tasks := make([]campaign.Task, len(specs))
	for i, spec := range specs {
		if tasks[i], err = campaign.TaskForSpec(spec); err != nil {
			return err
		}
	}

	opts := campaign.Options{Workers: *workers, MaxAttempts: 1}
	if *cacheDir != "" {
		store, err := campaign.OpenStore(*cacheDir)
		if err != nil {
			return err
		}
		opts.Store = store
		opts.MaxAttempts = 2
	}
	sched := campaign.NewScheduler(opts)

	start := time.Now() //roadlint:allow wallclock sweep harness timing, printed to the operator
	results := sched.Execute(tasks)
	wall := time.Since(start) //roadlint:allow wallclock sweep harness timing, printed to the operator

	var accs []float64
	var rows [][]string
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("run %s: %w", r.Name, r.Err)
		}
		acc := repro.LateAccuracy(r.Result, 3)
		accs = append(accs, acc)
		source := "run"
		if r.Cached {
			source = "cache"
		}
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.3f", acc),
			fmt.Sprintf("%.0f", r.Result.Metrics.Counter(metrics.CounterRounds)),
			fmt.Sprintf("%.2f", float64(r.Result.Comm["v2c"].BytesDelivered)/1e6),
			source,
			r.Result.Wall.Round(time.Millisecond).String(),
		})
	}
	fmt.Print(textplot.Table([]string{"run", "late acc", "rounds", "v2c MB", "src", "wall"}, rows))

	mean, std := meanStd(accs)
	fmt.Printf("\nlate accuracy over %d seeds: %.3f ± %.3f (min %.3f, max %.3f)\n",
		len(accs), mean, std, minOf(accs), maxOf(accs))
	st := sched.Stats()
	fmt.Printf("sweep wall time: %v (%d workers, %d executed, %d cached)\n",
		wall.Round(time.Millisecond), effectiveWorkers(*workers, len(specs)), st.Executed, st.Cached)
	return nil
}

func buildStrategy(name string, rounds int) (strategy.Strategy, error) {
	switch name {
	case "fedavg", "base":
		c := strategy.DefaultFedAvgConfig()
		c.Rounds = rounds
		return strategy.NewFederatedAveraging(c)
	case "opp", "opportunistic":
		c := strategy.DefaultOppConfig()
		c.Rounds = rounds
		return strategy.NewOpportunistic(c)
	case "gossip":
		return strategy.NewGossip(strategy.DefaultGossipConfig())
	case "centralized":
		c := strategy.DefaultCentralizedConfig()
		c.Rounds = rounds
		return strategy.NewCentralized(c)
	case "hybrid":
		return strategy.NewHybrid(strategy.DefaultHybridConfig())
	case "rsu", "rsu-assisted":
		c := strategy.DefaultRSUAssistedConfig()
		c.Rounds = rounds
		return strategy.NewRSUAssisted(c)
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

func meanStd(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	for _, v := range values {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(values)))
	return mean, std
}

func minOf(values []float64) float64 {
	out := math.Inf(1)
	for _, v := range values {
		out = math.Min(out, v)
	}
	return out
}

func maxOf(values []float64) float64 {
	out := math.Inf(-1)
	for _, v := range values {
		out = math.Max(out, v)
	}
	return out
}

func effectiveWorkers(requested, jobs int) int {
	if requested <= 0 {
		requested = jobs
	}
	if requested > jobs {
		requested = jobs
	}
	return requested
}
