package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"

	"roadrunner/internal/campaign"
)

// maxManifestBytes bounds a submitted manifest body; cross-product
// expansion is validated separately, this only guards the decoder.
const maxManifestBytes = 1 << 20

// server is the HTTP face of the campaign scheduler: a registry of
// submitted campaigns plus handlers for submission, status, progress
// streaming, result retrieval, and metrics.
type server struct {
	sched *campaign.Scheduler

	mu        sync.Mutex
	campaigns map[string]*campaign.Campaign
	order     []string // registration order, for deterministic listings
	seq       int
}

func newServer(sched *campaign.Scheduler) *server {
	return &server{sched: sched, campaigns: make(map[string]*campaign.Campaign)}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{key}", s.handleRun)
	return mux
}

// register assigns the campaign a fresh ID derived from a sequence number
// and a manifest digest, and records it in the listing order.
func (s *server) register(m campaign.Manifest) (*campaign.Campaign, error) {
	digest := "nohash"
	if data, err := json.Marshal(m); err == nil {
		sum := sha256.Sum256(data)
		digest = hex.EncodeToString(sum[:4])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var id string
	for {
		s.seq++
		id = fmt.Sprintf("c%04d-%s", s.seq, digest)
		if _, taken := s.campaigns[id]; !taken {
			break
		}
	}
	c, err := campaign.NewCampaign(id, m)
	if err != nil {
		s.seq--
		return nil, err
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	return c, nil
}

// registerResumed installs a campaign rebuilt from a journal under its
// original ID.
func (s *server) registerResumed(c *campaign.Campaign) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, taken := s.campaigns[c.ID()]; taken {
		return false
	}
	s.campaigns[c.ID()] = c
	s.order = append(s.order, c.ID())
	return true
}

// resumeJournaled rebuilds every journaled campaign in the store and
// relaunches it. Completed campaigns finish instantly as pure cache hits;
// interrupted ones execute only their missing runs.
func (s *server) resumeJournaled() (int, error) {
	store := s.sched.Store()
	if store == nil {
		return 0, fmt.Errorf("resume requires a store-backed scheduler")
	}
	ids, err := store.JournaledCampaignIDs()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		manifest, _, err := campaign.ReadJournal(store.JournalPath(id))
		if err != nil {
			continue // torn-beyond-manifest journals are not resumable
		}
		c, err := campaign.NewCampaign(id, manifest)
		if err != nil {
			continue
		}
		if !s.registerResumed(c) {
			continue
		}
		go func() { _, _ = s.sched.RunCampaign(c) }()
		n++
	}
	return n, nil
}

func (s *server) campaign(id string) *campaign.Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var m campaign.Manifest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxManifestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode manifest: %w", err))
		return
	}
	c, err := s.register(m)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	go func() { _, _ = s.sched.RunCampaign(c) }()
	writeJSON(w, http.StatusAccepted, c.Status())
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]campaign.Status, 0, len(ids))
	for _, id := range ids {
		if c := s.campaign(id); c != nil {
			st := c.Status()
			st.Runs = nil // listings stay small; per-run detail is one GET away
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (s *server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

// handleEvents streams campaign progress as server-sent events: one
// data: line per run transition, then a terminal campaign event. For a
// finished campaign the stream is just the terminal snapshot.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	events, cancel := c.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	// Opening snapshot so a subscriber joining mid-campaign is consistent.
	writeSSE(w, campaign.Event{Type: "campaign", Campaign: c.ID(), Status: statusPtr(c.Status())})
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-events:
			if !open {
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		}
	}
}

func statusPtr(st campaign.Status) *campaign.Status { return &st }

func writeSSE(w http.ResponseWriter, ev campaign.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	_, _ = fmt.Fprintf(w, "data: %s\n\n", data)
}

// handleRun serves a stored run. The default view is the verified
// canonical result bytes — exactly what a fresh execution of the run's
// spec would produce; ?view=meta and ?view=spec serve the sidecars.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	store := s.sched.Store()
	if store == nil {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no result store attached"))
		return
	}
	key := r.PathValue("key")
	switch view := r.URL.Query().Get("view"); view {
	case "", "canonical":
		data, err := store.CanonicalBytes(key)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				httpError(w, http.StatusNotFound, fmt.Errorf("no stored run %q", key))
				return
			}
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(data)
	case "meta":
		meta, err := store.Meta(key)
		if err != nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("no stored run %q", key))
			return
		}
		writeJSON(w, http.StatusOK, meta)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown view %q", view))
	}
}

// handleMetrics renders scheduler and store gauges in Prometheus text
// exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.sched.Stats()
	s.mu.Lock()
	totalCampaigns := len(s.order)
	s.mu.Unlock()
	corruptions := 0
	if store := s.sched.Store(); store != nil {
		corruptions = store.Corruptions()
	}
	throughput := 0.0
	if st.WallSeconds > 0 {
		throughput = st.SimSeconds / st.WallSeconds
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics := []struct {
		name, kind, help string
		value            any
	}{
		{"roadrunnerd_queue_depth", "gauge", "Runs waiting for a worker.", st.QueueDepth},
		{"roadrunnerd_runs_active", "gauge", "Runs currently executing.", st.Active},
		{"roadrunnerd_runs_executed_total", "counter", "Fresh simulation executions.", st.Executed},
		{"roadrunnerd_runs_cached_total", "counter", "Store hits that skipped execution.", st.Cached},
		{"roadrunnerd_runs_failed_total", "counter", "Runs whose every attempt failed.", st.Failed},
		{"roadrunnerd_runs_retried_total", "counter", "Extra attempts after failures.", st.Retried},
		{"roadrunnerd_sim_seconds_total", "counter", "Simulated seconds executed.", st.SimSeconds},
		{"roadrunnerd_sim_events_total", "counter", "Simulation events processed by fresh executions.", st.EventsExecuted},
		{"roadrunnerd_wall_seconds_total", "counter", "Host seconds spent in fresh executions.", st.WallSeconds},
		{"roadrunnerd_simsec_per_wallsec", "gauge", "Aggregate simulation throughput.", throughput},
		{"roadrunnerd_store_corruptions_total", "counter", "Store entries evicted for failing integrity checks.", corruptions},
		{"roadrunnerd_campaigns_total", "counter", "Campaigns registered since startup.", totalCampaigns},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", m.name, m.help, m.name, m.kind, m.name, m.value)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
