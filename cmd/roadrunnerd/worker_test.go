package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"roadrunner/internal/campaign"
	"roadrunner/internal/cluster"
)

// TestRunWorkerExecutesAndDrainsOnSignal runs the real worker loop
// against an in-process coordinator: the worker must register, claim
// and execute every run of a submitted campaign, and exit cleanly when
// the process receives SIGTERM.
func TestRunWorkerExecutesAndDrainsOnSignal(t *testing.T) {
	dir := t.TempDir()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	co, err := cluster.NewCoordinator(cluster.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	mux := http.NewServeMux()
	co.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	workerStore, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- runWorker(workerConfig{
			join:     ts.URL,
			node:     "wtest",
			capacity: 2,
			store:    workerStore,
			attempts: 2,
			out:      &out,
		})
	}()

	// Wait for registration, then submit and let the worker drain it.
	waitFor(t, func() bool { return len(co.Nodes()) == 1 })
	id, err := co.Submit(campaign.Manifest{
		Name:   "worker-e2e",
		Env:    campaign.EnvTiny,
		Rounds: 2,
		Strategies: []campaign.StrategySpec{
			{Kind: "fedavg"},
			{Kind: "opp"},
		},
		Seeds: []uint64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		c, err := co.Campaign(id)
		return err == nil && c.Status().Done
	})
	c, err := co.Campaign(id)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("campaign status after worker drain: %+v", st)
	}

	// SIGTERM is intercepted by the worker's signal.Notify handler; the
	// loop must join its heartbeat goroutine and return nil.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-workerErr:
		if err != nil {
			t.Fatalf("runWorker returned %v", err)
		}
	case <-time.After(10 * time.Second): //roadlint:allow wallclock test harness timeout for worker shutdown
		t.Fatal("worker did not exit after SIGTERM")
	}
	log := out.String()
	if !strings.Contains(log, "worker wtest joined") {
		t.Fatalf("worker log missing join line: %q", log)
	}
	if !strings.Contains(log, "worker wtest: done") {
		t.Fatalf("worker log missing completion lines: %q", log)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond) //roadlint:allow wallclock test harness polling for the worker goroutine
	}
	t.Fatal("condition never became true")
}

// syncBuffer is a goroutine-safe strings.Builder for the worker's log.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
