package main

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"roadrunner/internal/campaign"
	"roadrunner/internal/cluster"
)

// workerConfig assembles a worker-mode process.
type workerConfig struct {
	join     string
	node     string
	capacity int
	store    *campaign.Store
	attempts int
	out      io.Writer
}

// Worker pacing. All of these are host-side service-edge intervals: the
// lease protocol itself runs on the coordinator's logical tick clock and
// never observes them, so they affect latency only, never results.
const (
	heartbeatInterval = 500 * time.Millisecond
	idlePollInterval  = 200 * time.Millisecond
	registerRetry     = time.Second
	registerAttempts  = 30
)

// runWorker joins the coordinator, heartbeats in the background, and
// runs the claim loop until a termination signal: request assignments,
// pass the Start execution gate (dropping stale claims unexecuted),
// execute against the shared store, report the outcome. A 409 from
// Start or Complete means the lease was stolen or expired — the worker
// simply moves on; the re-issued claim's runner finds the result in the
// store if this worker already published it.
func runWorker(cfg workerConfig) error {
	client := cluster.NewClient(cfg.join, cfg.node)
	var err error
	for attempt := 0; attempt < registerAttempts; attempt++ {
		if err = client.Register(cfg.capacity); err == nil {
			break
		}
		time.Sleep(registerRetry) //roadlint:allow wallclock coordinator-join retry pacing at the service edge
	}
	if err != nil {
		return fmt.Errorf("join %s: %w", cfg.join, err)
	}
	fmt.Fprintf(cfg.out, "roadrunnerd: worker %s joined %s (capacity %d)\n", cfg.node, cfg.join, cfg.capacity)

	runner := cluster.NewRunner(cfg.store, cfg.attempts, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Heartbeats run beside the claim loop so a long execution cannot
	// starve lease extension. Joined on shutdown.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(heartbeatInterval) //roadlint:allow wallclock worker heartbeat pacing at the service edge
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				_ = client.Heartbeat()
			}
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	idle := time.NewTimer(0) //roadlint:allow wallclock idle-claim poll pacing at the service edge
	defer idle.Stop()
	for {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(cfg.out, "roadrunnerd: worker %s: %s, leaving cluster\n", cfg.node, sig)
			close(stop)
			wg.Wait()
			return nil
		case <-idle.C:
		}
		asgs, err := client.Claims(cfg.capacity)
		if err != nil || len(asgs) == 0 {
			idle.Reset(idlePollInterval)
			continue
		}
		// One round-trip gates the whole batch; a stale slot (stolen or
		// expired before we began) drops only its own assignment.
		leases := make([]campaign.LeaseID, len(asgs))
		for i, asg := range asgs {
			leases[i] = asg.Lease
		}
		startErrs, err := client.StartBatch(leases)
		if err != nil {
			idle.Reset(idlePollInterval)
			continue
		}
		var reports []cluster.CompletionReport
		var ran []cluster.Assignment
		for i, asg := range asgs {
			if startErrs[i] != nil {
				continue // stale or rejected; drop without executing
			}
			out := runner.Run(asg)
			reports = append(reports, cluster.CompletionReport{Lease: asg.Lease, Outcome: out})
			ran = append(ran, asg)
		}
		if compErrs, err := client.CompleteBatch(reports); err == nil {
			for i, asg := range ran {
				if compErrs[i] != nil {
					continue // lease expired mid-run; the re-issued claim will serve our stored result
				}
				fmt.Fprintf(cfg.out, "roadrunnerd: worker %s: %s %s (%.8s)\n", cfg.node, reports[i].Outcome.State, asg.Spec.Name, asg.Key)
			}
		}
		idle.Reset(0) // more work may be waiting; claim again immediately
	}
}
