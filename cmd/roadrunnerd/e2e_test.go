package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"roadrunner/internal/campaign"
)

// e2eManifest is the laptop-scale two-run campaign the smoke test submits.
const e2eManifest = `{
  "name": "e2e-smoke",
  "env": "tiny",
  "rounds": 2,
  "strategies": [{"kind": "fedavg"}, {"kind": "opp"}],
  "seeds": [1]
}`

func postCampaign(t *testing.T, ts *httptest.Server, manifest string) campaign.Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st campaign.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollDone polls the status endpoint until the campaign reports done.
func pollDone(t *testing.T, ts *httptest.Server, id string) campaign.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st campaign.Status
		if code := getJSON(t, ts.URL+"/v1/campaigns/"+id, &st); code != http.StatusOK {
			t.Fatalf("status poll for %s returned %d", id, code)
		}
		if st.Done {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s did not finish: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metricValue extracts one gauge/counter from Prometheus exposition text.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: unparseable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

func fetchRunBytes(t *testing.T, ts *httptest.Server, key string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run fetch %s: status %d", key, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestEndToEndColdThenWarm is the acceptance-criteria test: submit a
// two-run campaign over HTTP, wait for completion, then resubmit the
// identical manifest and assert the warm pass is 100% cache hits, executes
// zero simulation ticks, and serves byte-identical results.
func TestEndToEndColdThenWarm(t *testing.T) {
	_, ts := newTestServer(t)

	// Cold pass: everything executes.
	cold := postCampaign(t, ts, e2eManifest)
	if cold.Total != 2 {
		t.Fatalf("cold campaign expanded %d runs, want 2", cold.Total)
	}
	coldDone := pollDone(t, ts, cold.ID)
	if coldDone.Completed != 2 || coldDone.Cached != 0 || coldDone.Failed != 0 {
		t.Fatalf("cold campaign outcome: %+v", coldDone)
	}
	if got := metricValue(t, ts, "roadrunnerd_runs_executed_total"); got != 2 {
		t.Fatalf("cold executed_total = %v, want 2", got)
	}
	simEventsCold := metricValue(t, ts, "roadrunnerd_sim_events_total")
	if simEventsCold <= 0 {
		t.Fatalf("cold pass executed no simulation events")
	}

	// Served bytes must equal a fresh in-process execution of each spec.
	var m campaign.Manifest
	if err := json.Unmarshal([]byte(e2eManifest), &m); err != nil {
		t.Fatal(err)
	}
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	coldBytes := make(map[string][]byte)
	for i, run := range coldDone.Runs {
		served := fetchRunBytes(t, ts, run.Key)
		coldBytes[run.Key] = served
		res, err := specs[i].Execute()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := res.CanonicalBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served, fresh) {
			t.Fatalf("run %s: served bytes differ from a fresh execution", run.Name)
		}
	}

	// Warm pass: identical manifest, new campaign, all cache hits.
	warm := postCampaign(t, ts, e2eManifest)
	if warm.ID == cold.ID {
		t.Fatal("resubmission reused the cold campaign id")
	}
	warmDone := pollDone(t, ts, warm.ID)
	if warmDone.Cached != 2 || warmDone.Completed != 0 || warmDone.Failed != 0 {
		t.Fatalf("warm campaign outcome: %+v (want 100%% cache hits)", warmDone)
	}
	if got := metricValue(t, ts, "roadrunnerd_runs_executed_total"); got != 2 {
		t.Fatalf("warm pass executed fresh runs: executed_total = %v", got)
	}
	if got := metricValue(t, ts, "roadrunnerd_sim_events_total"); got != simEventsCold {
		t.Fatalf("warm pass executed simulation ticks: events %v -> %v", simEventsCold, got)
	}
	if got := metricValue(t, ts, "roadrunnerd_runs_cached_total"); got != 2 {
		t.Fatalf("warm cached_total = %v, want 2", got)
	}
	for _, run := range warmDone.Runs {
		if run.State != campaign.RunCached {
			t.Fatalf("warm run %s state %q, want cached", run.Name, run.State)
		}
		if served := fetchRunBytes(t, ts, run.Key); !bytes.Equal(served, coldBytes[run.Key]) {
			t.Fatalf("run %s: warm bytes differ from cold bytes", run.Name)
		}
	}

	// Meta view serves the sidecar.
	var meta campaign.RunMeta
	if code := getJSON(t, ts.URL+"/v1/runs/"+warmDone.Runs[0].Key+"?view=meta", &meta); code != http.StatusOK {
		t.Fatalf("meta view status %d", code)
	}
	if meta.Key != warmDone.Runs[0].Key || meta.SHA256 == "" {
		t.Fatalf("meta view: %+v", meta)
	}
}

// TestEndToEndTraceEndpoint exercises the trace observability surface: a
// completed run's trace is generated by a traced re-execution, cached as a
// store sidecar (second fetch serves identical bytes), exported in both
// formats, and accounted per campaign on /metrics. Generating a trace must
// not disturb the stored canonical result.
func TestEndToEndTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	st := postCampaign(t, ts, e2eManifest)
	done := pollDone(t, ts, st.ID)
	key := done.Runs[0].Key
	resultBefore := fetchRunBytes(t, ts, key)

	fetchTrace := func(query string, wantStatus int) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/runs/" + key + "/trace" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != wantStatus {
			t.Fatalf("trace fetch %q: status %d, want %d", query, resp.StatusCode, wantStatus)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	jsonTrace := fetchTrace("", http.StatusOK)
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(jsonTrace, &chrome); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	csvTrace := fetchTrace("?format=csv", http.StatusOK)
	if !strings.HasPrefix(string(csvTrace), "# roadrunner-trace-v1") {
		t.Fatalf("canonical trace header missing: %.60s", csvTrace)
	}

	// The second fetch must be a sidecar cache hit with identical bytes —
	// and only the first generation counts on /metrics.
	if again := fetchTrace("", http.StatusOK); !bytes.Equal(again, jsonTrace) {
		t.Fatal("cached trace bytes differ from the generated ones")
	}
	if got := metricValue(t, ts, "roadrunnerd_traces_generated_total"); got != 1 {
		t.Fatalf("traces_generated_total = %v, want 1", got)
	}
	spansMetric := fmt.Sprintf("roadrunnerd_trace_spans_total{campaign=%q}", st.ID)
	if got := metricValue(t, ts, spansMetric); got <= 0 {
		t.Fatalf("%s = %v, want > 0", spansMetric, got)
	}

	// The traced re-run must not have perturbed the stored result.
	if after := fetchRunBytes(t, ts, key); !bytes.Equal(after, resultBefore) {
		t.Fatal("generating a trace changed the stored canonical result")
	}

	fetchTrace("?format=xml", http.StatusBadRequest)
	resp, err := http.Get(ts.URL + "/v1/runs/" + strings.Repeat("ab", 32) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run trace status %d, want 404", resp.StatusCode)
	}
}

// TestEndToEndEventStream verifies the SSE endpoint delivers a terminal
// campaign snapshot (late subscription to a finished campaign is the
// deterministic case).
func TestEndToEndEventStream(t *testing.T) {
	_, ts := newTestServer(t)
	st := postCampaign(t, ts, e2eManifest)
	pollDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawTerminal bool
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev campaign.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", data, err)
		}
		if ev.Type == "campaign" && ev.Status != nil && ev.Status.Done {
			sawTerminal = true
			break
		}
	}
	if !sawTerminal {
		t.Fatal("event stream ended without a terminal campaign snapshot")
	}
}

// TestEndToEndResumeFlag exercises the daemon's -resume path: a campaign
// journaled by one server instance is picked up and finished by the next.
func TestEndToEndResumeFlag(t *testing.T) {
	dir := t.TempDir()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(campaign.NewScheduler(campaign.Options{Workers: 1, Store: store}))
	ts := httptest.NewServer(srv.routes(false))
	st := postCampaign(t, ts, e2eManifest)
	pollDone(t, ts, st.ID)
	ts.Close()

	// "Restart": fresh store handle, fresh server, resume from journals.
	store2, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sched2 := campaign.NewScheduler(campaign.Options{Workers: 1, Store: store2})
	srv2 := newServer(sched2)
	n, err := srv2.resumeJournaled()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed %d campaigns, want 1", n)
	}
	ts2 := httptest.NewServer(srv2.routes(false))
	defer ts2.Close()
	final := pollDone(t, ts2, st.ID)
	if final.Cached != 2 || final.Failed != 0 {
		t.Fatalf("resumed campaign outcome: %+v (want all cache hits)", final)
	}
	if got := sched2.Stats().Executed; got != 0 {
		t.Fatalf("resume of a finished campaign executed %d fresh runs", got)
	}
	if !strings.HasPrefix(st.ID, fmt.Sprintf("c%04d-", 1)) {
		t.Fatalf("unexpected campaign id shape %q", st.ID)
	}
}
