package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadrunner/internal/campaign"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := campaign.NewScheduler(campaign.Options{
		Workers: 2,
		Store:   store,
		Backoff: func(int) {},
	})
	srv := newServer(sched)
	ts := httptest.NewServer(srv.routes(false))
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body: %v", body)
	}
}

func TestServerRejectsBadSubmissions(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string]string{
		"malformed json":   `{"name": `,
		"unknown field":    `{"name":"x","strategies":[{"kind":"fedavg"}],"seeds":[1],"bogus":true}`,
		"invalid manifest": `{"name":"x","strategies":[{"kind":"warp"}],"seeds":[1]}`,
		"no seeds":         `{"name":"x","strategies":[{"kind":"fedavg"}]}`,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	var listing struct {
		Campaigns []campaign.Status `json:"campaigns"`
	}
	if code := getJSON(t, ts.URL+"/v1/campaigns", &listing); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(listing.Campaigns) != 0 {
		t.Fatalf("rejected submissions were registered: %+v", listing.Campaigns)
	}
}

func TestServerUnknownResourcesAre404(t *testing.T) {
	_, ts := newTestServer(t)
	if code := getJSON(t, ts.URL+"/v1/campaigns/c9999-missing", nil); code != http.StatusNotFound {
		t.Fatalf("unknown campaign status %d", code)
	}
	key := strings.Repeat("ab", 32)
	if code := getJSON(t, ts.URL+"/v1/runs/"+key, nil); code != http.StatusNotFound {
		t.Fatalf("unknown run status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/runs/not-a-key", nil); code != http.StatusNotFound {
		t.Fatalf("malformed run key status %d", code)
	}
}

func TestServerMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"roadrunnerd_queue_depth 0",
		"roadrunnerd_runs_executed_total 0",
		"roadrunnerd_runs_cached_total 0",
		"roadrunnerd_store_corruptions_total 0",
		"# TYPE roadrunnerd_simsec_per_wallsec gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServerCampaignIDsAreUniquePerSubmission(t *testing.T) {
	srv, _ := newTestServer(t)
	m := campaign.Manifest{
		Name:       "dup",
		Env:        campaign.EnvTiny,
		Rounds:     1,
		Strategies: []campaign.StrategySpec{{Kind: "fedavg"}},
		Seeds:      []uint64{1},
	}
	a, err := srv.register(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.register(m)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == b.ID() {
		t.Fatalf("identical manifests share campaign id %q", a.ID())
	}
}
