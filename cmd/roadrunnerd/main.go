// Command roadrunnerd is the campaign orchestration service: a durable run
// queue, a content-addressed result cache, and an HTTP experiment API over
// the deterministic simulation core. Clients submit declarative campaign
// manifests (strategies × seeds × fault scenarios × config overrides); the
// service expands them into content-addressed run specs, executes them on a
// bounded worker pool, persists every result, and serves previously
// computed runs byte-identically without re-executing a single tick.
//
// Usage:
//
//	roadrunnerd [-addr 127.0.0.1:8383] [-store results/store] [-workers N] [-resume]
//
// Endpoints:
//
//	POST /v1/campaigns             submit a manifest, returns 202 + status
//	GET  /v1/campaigns             list submitted campaigns
//	GET  /v1/campaigns/{id}        campaign status snapshot
//	GET  /v1/campaigns/{id}/events SSE progress stream
//	GET  /v1/runs/{key}            verified canonical result bytes (?view=meta|spec)
//	GET  /v1/runs/{key}/trace      simulated-time span trace (?format=json|csv)
//	GET  /metrics                  Prometheus-style scheduler/store gauges
//	GET  /healthz                  liveness probe
//
// The -pprof flag additionally mounts net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roadrunner/internal/campaign"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "roadrunnerd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("roadrunnerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8383", "listen address")
	storeDir := fs.String("store", "results/store", "durable result store directory")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	attempts := fs.Int("max-attempts", 2, "executions per run before it is failed")
	resume := fs.Bool("resume", false, "resume journaled campaigns at startup")
	pprofEnabled := fs.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := campaign.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	sched := campaign.NewScheduler(campaign.Options{
		Workers:     *workers,
		Store:       store,
		MaxAttempts: *attempts,
	})
	srv := newServer(sched)
	if *resume {
		n, err := srv.resumeJournaled()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "roadrunnerd: resumed %d journaled campaign(s)\n", n)
	}

	fmt.Fprintf(out, "roadrunnerd: listening on %s (store %s, %d max attempts)\n",
		*addr, *storeDir, *attempts)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.routes(*pprofEnabled),
		// SSE streams stay open indefinitely, so only the header read is
		// bounded; this is host-side service plumbing, not simulated time.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until the listener fails or a termination signal arrives; on
	// signal, stop accepting, then join every in-flight campaign goroutine
	// so journals close at a run boundary instead of mid-write.
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	select {
	case err := <-serveErr:
		srv.drain()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "roadrunnerd: %s, draining in-flight campaigns\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.drain()
		return nil
	}
}
