// Command roadrunnerd is the campaign orchestration service: a durable run
// queue, a content-addressed result cache, and an HTTP experiment API over
// the deterministic simulation core. Clients submit declarative campaign
// manifests (strategies × seeds × fault scenarios × config overrides); the
// service expands them into content-addressed run specs, executes them on a
// bounded worker pool, persists every result, and serves previously
// computed runs byte-identically without re-executing a single tick.
//
// Usage:
//
//	roadrunnerd [-addr 127.0.0.1:8383] [-store results/store] [-workers N] [-resume]
//
// Endpoints:
//
//	POST /v1/campaigns             submit a manifest, returns 202 + status
//	GET  /v1/campaigns             list submitted campaigns
//	GET  /v1/campaigns/{id}        campaign status snapshot
//	GET  /v1/campaigns/{id}/events SSE progress stream
//	GET  /v1/runs/{key}            verified canonical result bytes (?view=meta|spec)
//	GET  /v1/runs/{key}/trace      simulated-time span trace (?format=json|csv)
//	GET  /metrics                  Prometheus-style scheduler/store gauges
//	GET  /healthz                  liveness probe
//
// The -pprof flag additionally mounts net/http/pprof under /debug/pprof/.
//
// Cluster modes:
//
//	roadrunnerd -cluster               additionally serve the coordinator
//	                                   API under /v1/cluster/ (see
//	                                   internal/cluster) and advance the
//	                                   cluster's logical lease clock
//	roadrunnerd -join URL -node NAME   run as a worker: register with the
//	                                   coordinator at URL, heartbeat, claim
//	                                   runs, execute them against the
//	                                   shared store, report outcomes
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roadrunner/internal/campaign"
	"roadrunner/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "roadrunnerd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("roadrunnerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8383", "listen address")
	storeDir := fs.String("store", "results/store", "durable result store directory")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	attempts := fs.Int("max-attempts", 2, "executions per run before it is failed")
	resume := fs.Bool("resume", false, "resume journaled campaigns at startup")
	pprofEnabled := fs.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	clusterMode := fs.Bool("cluster", false, "serve the cluster coordinator API under /v1/cluster/")
	policyName := fs.String("policy", "round-robin", "cluster routing policy: round-robin, least-loaded, config-affinity")
	leaseTTL := fs.Int("lease-ttl", 6, "cluster lease TTL in logical ticks")
	stealAfter := fs.Int("steal-after", 3, "ticks an unstarted claim may idle before it is stealable")
	maxOutstanding := fs.Int("max-outstanding", 0, "cluster admission cap on unfinished runs; submits past it get 429 (0 = uncapped)")
	compactEvery := fs.Int("compact-every", 0, "queue-log entries between snapshot compactions (0 = default, negative disables)")
	tick := fs.Duration("tick", 500*time.Millisecond, "host interval between cluster clock ticks")
	join := fs.String("join", "", "worker mode: coordinator base URL to join (e.g. http://127.0.0.1:8383)")
	nodeName := fs.String("node", "", "worker mode: this node's name")
	capacity := fs.Int("capacity", 2, "worker mode: max claims held at once")
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := campaign.OpenStore(*storeDir)
	if err != nil {
		return err
	}

	if *join != "" {
		if *nodeName == "" {
			return fmt.Errorf("-join requires -node")
		}
		return runWorker(workerConfig{
			join:     *join,
			node:     *nodeName,
			capacity: *capacity,
			store:    store,
			attempts: *attempts,
			out:      out,
		})
	}

	sched := campaign.NewScheduler(campaign.Options{
		Workers:     *workers,
		Store:       store,
		MaxAttempts: *attempts,
	})
	srv := newServer(sched)
	if *resume {
		n, err := srv.resumeJournaled()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "roadrunnerd: resumed %d journaled campaign(s)\n", n)
	}

	mux := srv.routes(*pprofEnabled)
	var stopTicking func()
	if *clusterMode {
		policy, err := cluster.PolicyByName(*policyName)
		if err != nil {
			return err
		}
		co, err := cluster.NewCoordinator(cluster.Options{
			Store:          store,
			Policy:         policy,
			LeaseTTL:       campaign.Tick(*leaseTTL),
			StealAfter:     campaign.Tick(*stealAfter),
			MaxOutstanding: *maxOutstanding,
			CompactEvery:   *compactEvery,
		})
		if err != nil {
			return err
		}
		co.Routes(mux)
		stopTicking = startClusterClock(co, *tick)
		defer co.Close()
		fmt.Fprintf(out, "roadrunnerd: cluster coordinator enabled (policy %s, lease TTL %d ticks)\n",
			policy.Name(), *leaseTTL)
	}

	fmt.Fprintf(out, "roadrunnerd: listening on %s (store %s, %d max attempts)\n",
		*addr, *storeDir, *attempts)
	hs := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// SSE streams stay open indefinitely, so only the header read is
		// bounded; this is host-side service plumbing, not simulated time.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until the listener fails or a termination signal arrives; on
	// signal, stop accepting, then join every in-flight campaign goroutine
	// so journals close at a run boundary instead of mid-write.
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	select {
	case err := <-serveErr:
		if stopTicking != nil {
			stopTicking()
		}
		srv.drain()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "roadrunnerd: %s, draining in-flight campaigns\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		if stopTicking != nil {
			stopTicking()
		}
		srv.drain()
		return nil
	}
}

// startClusterClock advances the coordinator's logical lease clock from
// a host timer — the one place cluster timing touches the wall clock;
// the lease protocol itself only ever sees tick counts. The returned
// stop function joins the ticking goroutine.
func startClusterClock(co *cluster.Coordinator, interval time.Duration) func() {
	ticker := time.NewTicker(interval) //roadlint:allow wallclock cluster lease clock is driven from the service edge; the protocol only sees logical ticks
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ticker.C:
				co.Advance()
			case <-stop:
				return
			}
		}
	}()
	return func() {
		ticker.Stop()
		close(stop)
		<-done
	}
}
