// Command roadlint runs the project's determinism-and-concurrency static
// analyzers over Go packages and exits non-zero on findings, so it can
// gate CI next to go vet and the race detector.
//
// Usage:
//
//	roadlint [-rules detrand,wallclock,...] [-list] [patterns...]
//
// Patterns are directories, .go files, or go-tool-style "dir/..." trees;
// the default is "./...". Findings are reported as
//
//	file:line:col: rule: message
//
// and suppressed per line with "//roadlint:allow <rule> [justification]"
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"roadrunner/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("roadlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: roadlint [-rules r1,r2] [-list] [patterns...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-10s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *rules != "" {
		selected, err := selectRules(analyzers, *rules)
		if err != nil {
			fmt.Fprintln(errOut, "roadlint:", err)
			return 2
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "roadlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		d.Pos.Filename = relPath(d.Pos.Filename)
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "roadlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectRules(all []lint.Analyzer, spec string) ([]lint.Analyzer, error) {
	byName := make(map[string]lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// relPath shortens a path relative to the working directory when that is
// both possible and actually shorter to read.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
