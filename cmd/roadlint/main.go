// Command roadlint runs the project's determinism-and-concurrency static
// analyzers over Go packages and exits non-zero on error-severity
// findings, so it can gate CI next to go vet and the race detector.
//
// Usage:
//
//	roadlint [-rules r1,r2] [-list] [-format text|json|sarif] [-out file]
//	         [-baseline file [-update-baseline]] [-severity rule=warn,...]
//	         [patterns...]
//
// Patterns are directories, .go files, or go-tool-style "dir/..." trees;
// the default is "./...". Packages inside a Go module are type-checked
// against the whole module graph, so rules see resolved cross-package
// types. Findings are reported as
//
//	file:line:col: rule: message
//
// in text form, or as machine-readable JSON / SARIF 2.1.0 with -format.
// Findings are suppressed per line with "//roadlint:allow <rule>
// [justification]" on the offending line or the line directly above it;
// the suppressaudit rule flags directives that no longer suppress
// anything. A -baseline file absorbs accepted pre-existing findings
// (regenerate it with -update-baseline); the exit gate fires only on
// unbaselined error-severity findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"roadrunner/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("roadlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	outPath := fs.String("out", "", "write findings to this file instead of stdout")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings to filter out")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit 0")
	severitySpec := fs.String("severity", "", "per-rule severity overrides, e.g. maporder=warn,suppressaudit=error")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: roadlint [-rules r1,r2] [-list] [-format text|json|sarif] [-out file] [-baseline file [-update-baseline]] [-severity rule=level,...] [patterns...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *rules != "" {
		selected, err := selectRules(analyzers, *rules)
		if err != nil {
			fmt.Fprintln(errOut, "roadlint:", err)
			return 2
		}
		analyzers = selected
	}
	severities := lint.DefaultSeverities()
	if err := lint.ParseSeverityOverrides(*severitySpec, severities); err != nil {
		fmt.Fprintln(errOut, "roadlint:", err)
		return 2
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(errOut, "roadlint: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(errOut, "roadlint: -update-baseline needs -baseline")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "roadlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	rel := repoRelFunc()

	if *updateBaseline {
		b := lint.NewBaseline(diags, rel)
		if err := lint.WriteBaseline(*baselinePath, b); err != nil {
			fmt.Fprintln(errOut, "roadlint:", err)
			return 2
		}
		fmt.Fprintf(errOut, "roadlint: baseline %s updated with %d finding(s)\n", *baselinePath, len(diags))
		return 0
	}

	absorbed := 0
	if *baselinePath != "" {
		b, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(errOut, "roadlint:", err)
			return 2
		}
		var stale []lint.BaselineEntry
		diags, absorbed, stale = b.Filter(diags, rel)
		for _, e := range stale {
			fmt.Fprintf(errOut, "roadlint: stale baseline entry (fixed debt, drop it): %s: %s: %s\n", e.File, e.Rule, e.Message)
		}
	}

	// Machine formats carry repo-relative paths so artifacts are
	// host-independent; text keeps working-directory-relative paths for
	// clickable terminal output.
	for i := range diags {
		if *format == "text" {
			diags[i].Pos.Filename = relPath(diags[i].Pos.Filename)
		} else {
			diags[i].Pos.Filename = rel(diags[i].Pos.Filename)
		}
	}

	w := out
	if *outPath != "" {
		file, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(errOut, "roadlint:", err)
			return 2
		}
		defer file.Close()
		w = file
	}
	switch *format {
	case "text":
		err = lint.WriteText(w, diags)
	case "json":
		err = lint.WriteJSON(w, diags, severities)
	case "sarif":
		err = lint.WriteSARIF(w, diags, lint.Analyzers(), severities)
	}
	if err != nil {
		fmt.Fprintln(errOut, "roadlint:", err)
		return 2
	}

	errors, warnings := 0, 0
	for _, d := range diags {
		if sev, ok := severities[d.Rule]; ok && sev == lint.SeverityWarning {
			warnings++
		} else {
			errors++
		}
	}
	if len(diags) > 0 || absorbed > 0 {
		summary := fmt.Sprintf("roadlint: %d finding(s): %d error(s), %d warning(s)", len(diags), errors, warnings)
		if absorbed > 0 {
			summary += fmt.Sprintf("; %d baselined", absorbed)
		}
		fmt.Fprintln(errOut, summary)
	}
	if errors > 0 {
		return 1
	}
	return 0
}

func selectRules(all []lint.Analyzer, spec string) ([]lint.Analyzer, error) {
	byName := make(map[string]lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// relPath shortens a path relative to the working directory when that is
// both possible and actually shorter to read.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

// repoRelFunc returns a mapper from diagnostic paths to slash-separated
// paths relative to the enclosing module root (found by walking up from
// the working directory), falling back to the path unchanged.
func repoRelFunc() func(string) string {
	wd, err := os.Getwd()
	if err != nil {
		return func(p string) string { return filepath.ToSlash(p) }
	}
	root := wd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			root = ""
			break
		}
		root = parent
	}
	return func(p string) string {
		abs, err := filepath.Abs(p)
		if err != nil {
			return filepath.ToSlash(p)
		}
		if root != "" {
			if rel, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel)
			}
		}
		return filepath.ToSlash(p)
	}
}
