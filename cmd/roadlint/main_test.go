package main

import (
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata"

func TestExitNonZeroOnFindings(t *testing.T) {
	for _, rule := range []string{"detrand", "wallclock", "maporder", "forklabel"} {
		t.Run(rule, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run([]string{fixtures + "/" + rule + "/bad"}, &out, &errOut)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
			}
			if !strings.Contains(out.String(), rule+":") {
				t.Fatalf("missing %s diagnostics:\n%s", rule, out.String())
			}
			if !strings.Contains(errOut.String(), "finding(s)") {
				t.Fatalf("missing summary:\n%s", errOut.String())
			}
		})
	}
}

func TestExitZeroWhenClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{fixtures + "/wallclock/good"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

func TestRuleSelection(t *testing.T) {
	var out, errOut strings.Builder
	// The wallclock fixture is clean for every rule except wallclock.
	if code := run([]string{"-rules", "detrand,maporder", fixtures + "/wallclock/bad"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0 with wallclock disabled\n%s", code, out.String())
	}
}

func TestUnknownRule(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Fatalf("missing error: %s", errOut.String())
	}
}

func TestListRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, rule := range []string{"detrand", "wallclock", "maporder", "forklabel"} {
		if !strings.Contains(out.String(), rule) {
			t.Fatalf("rule %s missing from -list output:\n%s", rule, out.String())
		}
	}
}
