package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata"

func TestExitNonZeroOnFindings(t *testing.T) {
	for _, rule := range []string{"detrand", "wallclock", "maporder", "forklabel", "forkflow", "goroutinejoin", "floatorder"} {
		t.Run(rule, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run([]string{fixtures + "/" + rule + "/bad"}, &out, &errOut)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
			}
			if !strings.Contains(out.String(), rule+":") {
				t.Fatalf("missing %s diagnostics:\n%s", rule, out.String())
			}
			if !strings.Contains(errOut.String(), "finding(s)") {
				t.Fatalf("missing summary:\n%s", errOut.String())
			}
		})
	}
}

func TestExitZeroWhenClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{fixtures + "/wallclock/good"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

func TestRuleSelection(t *testing.T) {
	var out, errOut strings.Builder
	// The wallclock fixture is clean for every rule except wallclock.
	if code := run([]string{"-rules", "detrand,maporder", fixtures + "/wallclock/bad"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0 with wallclock disabled\n%s", code, out.String())
	}
}

func TestUnknownRule(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Fatalf("missing error: %s", errOut.String())
	}
}

func TestListRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, rule := range []string{"detrand", "wallclock", "maporder", "forklabel", "forkflow", "goroutinejoin", "floatorder", "suppressaudit"} {
		if !strings.Contains(out.String(), rule) {
			t.Fatalf("rule %s missing from -list output:\n%s", rule, out.String())
		}
	}
}

// TestSuppressAuditSeverity checks the severity pipeline end to end:
// suppressaudit findings are warnings by default (exit 0) and can be
// promoted to errors with -severity.
func TestSuppressAuditSeverity(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-rules", "detrand,suppressaudit", fixtures + "/suppressaudit/bad"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for warning-severity findings\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "2 warning(s)") {
		t.Fatalf("summary should count 2 warnings:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	code = run([]string{"-rules", "detrand,suppressaudit", "-severity", "suppressaudit=error", fixtures + "/suppressaudit/bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 with suppressaudit promoted to error\n%s", code, errOut.String())
	}
}

func TestUnknownFormat(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-format", "xml"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown format") {
		t.Fatalf("missing error: %s", errOut.String())
	}
}

func TestSeveritySpecErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-severity", "detrand=shrug"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2\n%s", code, errOut.String())
	}
}

func TestUpdateBaselineNeedsBaseline(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-update-baseline"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-update-baseline needs -baseline") {
		t.Fatalf("missing error: %s", errOut.String())
	}
}

// TestBaselineLifecycle drives the debt workflow end to end:
// -update-baseline captures current findings, a rerun absorbs them and
// exits 0, and once the debt is fixed the entries are reported stale.
func TestBaselineLifecycle(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline")
	target := fixtures + "/detrand/bad"

	var out, errOut strings.Builder
	if code := run([]string{"-rules", "detrand", "-baseline", base, "-update-baseline", target}, &out, &errOut); code != 0 {
		t.Fatalf("update-baseline exit = %d, want 0\n%s", code, errOut.String())
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-rules", "detrand", "-baseline", base, target}, &out, &errOut); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("baselined findings still reported:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "baselined") {
		t.Fatalf("summary should mention absorbed findings:\n%s", errOut.String())
	}

	// Linting a clean tree against the same baseline flags every entry as
	// paid debt.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-rules", "detrand", "-baseline", base, fixtures + "/wallclock/good"}, &out, &errOut); code != 0 {
		t.Fatalf("clean run exit = %d, want 0\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "stale baseline entry") {
		t.Fatalf("stale entries not reported:\n%s", errOut.String())
	}
}
