package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// checkGolden compares got against testdata/<name>, rewriting the golden
// when the test runs with -update (the cmd/figures convention).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file.\ngot:\n%s\nwant:\n%s\n(run 'go test ./cmd/roadlint -update' if the change is intended)",
			name, got, want)
	}
}

// goldenRun lints the detrand and wallclock bad fixtures in the given
// format and returns stdout. The fixture set and rule subset are fixed so
// the byte output only changes when the report format itself does; the
// SARIF rule table still covers the full registry, pinning every rule's
// descriptor.
func goldenRun(t *testing.T, format string) []byte {
	t.Helper()
	var out, errOut strings.Builder
	args := []string{
		"-rules", "detrand,wallclock",
		"-format", format,
		fixtures + "/detrand/bad",
		fixtures + "/wallclock/bad",
	}
	if code := run(args, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	return []byte(out.String())
}

func TestTextGolden(t *testing.T) {
	checkGolden(t, "report.golden.txt", goldenRun(t, "text"))
}

func TestJSONGolden(t *testing.T) {
	checkGolden(t, "report.golden.json", goldenRun(t, "json"))
}

func TestSARIFGolden(t *testing.T) {
	checkGolden(t, "report.golden.sarif", goldenRun(t, "sarif"))
}
