package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQueueBenchWritesReport runs the queue benchmark at smoke scale and
// validates the BENCH_queue.json schema end to end.
func TestQueueBenchWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_queue.json")
	if err := runQueue(96, 16, out, "", 10); err != nil {
		t.Fatalf("runQueue: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var r QueueReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("parse report: %v", err)
	}
	if r.Schema != 1 || r.Benchmark == "" || r.GoVersion == "" {
		t.Fatalf("incomplete report header: %+v", r)
	}
	if r.Runs != 96 || r.Batch != 16 {
		t.Fatalf("flag echo mismatch: %+v", r)
	}
	if r.Single.RunsPerSec <= 0 || r.Batched.RunsPerSec <= 0 || r.BatchSpeedup <= 0 {
		t.Fatalf("non-positive throughput arm: %+v", r)
	}
	if r.Single.Fsyncs != 4*96 {
		t.Fatalf("single arm fsync accounting: got %d, want %d", r.Single.Fsyncs, 4*96)
	}
	if r.Batched.Fsyncs >= r.Single.Fsyncs {
		t.Fatalf("batched arm did not amortize fsyncs: %d vs %d", r.Batched.Fsyncs, r.Single.Fsyncs)
	}
	// The full-log arm replays every per-ref entry the lifecycle wrote;
	// the compacting arm must replay strictly less tail.
	if r.Replay.FullEntries != 4*96 {
		t.Fatalf("full replay entries: got %d, want %d", r.Replay.FullEntries, 4*96)
	}
	if r.Replay.TailEntries >= r.Replay.FullEntries || r.Replay.Reduction <= 1 {
		t.Fatalf("snapshot replay did not reduce the tail: %+v", r.Replay)
	}
	if r.Replay.SnapshotRefs != 96 {
		t.Fatalf("snapshot refs: got %d, want 96", r.Replay.SnapshotRefs)
	}
}

func TestQueueBenchRejectsBadArgs(t *testing.T) {
	if err := runQueue(0, 16, "unused.json", "", 10); err == nil {
		t.Fatal("want error for zero runs")
	}
	if err := runQueue(16, 0, "unused.json", "", 10); err == nil {
		t.Fatal("want error for zero batch")
	}
	if err := runQueue(16, 4, filepath.Join(t.TempDir(), "out.json"), filepath.Join(t.TempDir(), "missing.json"), 10); err == nil {
		t.Fatal("want error for missing reference report")
	}
}

// TestCheckQueueRegression exercises the ratio gate directly: both
// ratios at or above the floor pass, either one below fails.
func TestCheckQueueRegression(t *testing.T) {
	ref := &QueueReport{BatchSpeedup: 30, Replay: QueueReplay{Reduction: 30}}
	ok := &QueueReport{BatchSpeedup: 25, Replay: QueueReplay{Reduction: 20}}
	if err := checkQueueRegression(ref, ok, 10); err != nil {
		t.Fatalf("ratios above floor must pass: %v", err)
	}
	slowBatch := &QueueReport{BatchSpeedup: 4, Replay: QueueReplay{Reduction: 20}}
	if err := checkQueueRegression(ref, slowBatch, 10); err == nil {
		t.Fatal("want error when batched speedup falls below the floor")
	}
	slowReplay := &QueueReport{BatchSpeedup: 25, Replay: QueueReplay{Reduction: 3}}
	if err := checkQueueRegression(ref, slowReplay, 10); err == nil {
		t.Fatal("want error when replay reduction falls below the floor")
	}
	if err := checkQueueRegression(nil, ok, 10); err != nil {
		t.Fatalf("nil reference must still gate the floors: %v", err)
	}
}
