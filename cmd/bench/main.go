// Command bench measures end-to-end simulation throughput on the paper's
// Figure-4 experiment and writes a machine-readable report for tracking
// performance across commits (CI uploads it as a build artifact).
//
// Usage:
//
//	bench                      # default: 2 rounds × 3 seeds -> BENCH_fig4.json
//	bench -rounds 5 -seeds 5   # heavier measurement
//	bench -evalworkers 4       # enable shard-parallel test-set evaluation
//	bench -check BENCH_fig4.json -tol 5
//	                           # fail if simsec/wallsec regressed >5% vs the
//	                           # reference report (read before overwriting)
//	bench -scale 50,500,5000,50000
//	                           # fleet-size scaling curve -> BENCH_scale.json
//	bench -scale 500 -scale-check BENCH_scale.json -tol 5
//	                           # gate the sizes present in both reports
//	bench -queue               # cluster queue protocol -> BENCH_queue.json
//	bench -queue -queue-check BENCH_queue.json
//	                           # fail unless batched verbs and snapshot
//	                           # compaction still deliver >=10x
//
// The report contains the measured ns/op, events/op, and simsec/wallsec of
// the combined BASE+OPP Figure-4 run (the same quantity as the repo's
// BenchmarkExperimentThroughput), alongside the tracked pre-optimisation
// baseline, so the speedup ratio is part of the artifact itself. It also
// carries a channel-variant point — the same workload under the
// radio+queued channel model — gated by -check like the analytic point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"roadrunner/internal/channel"
	"roadrunner/internal/repro"
)

// channelVariantModel names the channel stack the report's channel-variant
// point measures: radio pathloss/shadowing/fading composed with queueing
// delay — the most expensive synthetic channel path, so its overhead over
// the analytic point is the cost of channel realism.
const channelVariantModel = channel.ModelRadioQueued

// baselineMeasurement is the pre-optimisation reference: the repo's
// BenchmarkExperimentThroughput (2 rounds) measured on the commit before
// the GEMM-convolution/PathFinder work, Intel Xeon @ 2.10 GHz.
var baselineMeasurement = Measurement{
	NsPerOp:          2802386896,
	EventsPerOp:      407.3,
	SimsecPerWallsec: 189.7,
}

// Measurement is one throughput datapoint over the Figure-4 experiment.
type Measurement struct {
	// NsPerOp is host-nanoseconds per combined BASE+OPP Figure-4 run.
	NsPerOp float64 `json:"ns_per_op"`
	// EventsPerOp is the mean number of simulation events per run.
	EventsPerOp float64 `json:"events_per_op"`
	// SimsecPerWallsec is simulated seconds advanced per host second.
	SimsecPerWallsec float64 `json:"simsec_per_wallsec"`
}

// Report is the BENCH_fig4.json schema.
type Report struct {
	Schema      int    `json:"schema"`
	Benchmark   string `json:"benchmark"`
	Rounds      int    `json:"rounds"`
	Seeds       int    `json:"seeds"`
	EvalWorkers int    `json:"eval_workers"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// Baseline is the tracked pre-optimisation reference measurement;
	// Current is this run. Speedup is their simsec/wallsec ratio.
	Baseline Measurement `json:"baseline"`
	Current  Measurement `json:"current"`
	Speedup  float64     `json:"speedup_simsec_per_wallsec"`

	// Channel is the channel-variant point: the same workload under the
	// channelVariantModel channel stack, gated alongside Current by -check
	// when both reports carry it.
	Channel *ChannelVariant `json:"channel,omitempty"`
}

// ChannelVariant is the channel-model throughput point of the report.
type ChannelVariant struct {
	Model string `json:"model"`
	Measurement
}

func main() {
	rounds := flag.Int("rounds", 2, "FL rounds per Figure-4 run (benchmark scale, not the paper's 75)")
	seeds := flag.Int("seeds", 3, "number of seeded runs to average over")
	evalWorkers := flag.Int("evalworkers", 0, "evaluation worker count (0 or 1 = serial)")
	out := flag.String("out", "BENCH_fig4.json", "report output path")
	check := flag.String("check", "", "reference report: fail if simsec/wallsec regressed more than -tol percent")
	tol := flag.Float64("tol", 5, "allowed simsec/wallsec regression in percent for -check")
	scale := flag.String("scale", "", "comma-separated fleet sizes: run the scaling benchmark instead of Figure 4")
	scaleOut := flag.String("scale-out", "BENCH_scale.json", "scaling report output path")
	scaleCheck := flag.String("scale-check", "", "reference scaling report: gate sizes present in both reports")
	scaleHorizon := flag.Float64("scale-horizon", 300, "simulated seconds per scaling point")
	scaleSeed := flag.Uint64("scale-seed", 1, "seed for the scaling workload")
	queue := flag.Bool("queue", false, "run the cluster queue protocol benchmark instead of Figure 4")
	queueRuns := flag.Int("queue-runs", 2000, "queue benchmark: runs per protocol arm")
	queueBatch := flag.Int("queue-batch", 256, "queue benchmark: refs per batched verb")
	queueOut := flag.String("queue-out", "BENCH_queue.json", "queue report output path")
	queueCheck := flag.String("queue-check", "", "reference queue report: gate the batching and compaction ratios")
	queueMinRatio := flag.Float64("queue-min-ratio", 10, "minimum batched-verb speedup and replay reduction for -queue-check")
	flag.Parse()

	if *queue {
		if err := runQueue(*queueRuns, *queueBatch, *queueOut, *queueCheck, *queueMinRatio); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *scale != "" {
		if err := runScale(*scale, *scaleSeed, *scaleHorizon, *scaleOut, *scaleCheck, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*rounds, *seeds, *evalWorkers, *out, *check, *tol); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(rounds, seeds, evalWorkers int, out, check string, tol float64) error {
	if rounds < 1 || seeds < 1 {
		return fmt.Errorf("rounds and seeds must be positive (got %d, %d)", rounds, seeds)
	}
	// Load the reference before measuring: -check commonly points at the
	// very report file this run overwrites.
	var ref *Report
	if check != "" {
		var err error
		if ref, err = readReport(check); err != nil {
			return fmt.Errorf("read reference report: %w", err)
		}
	}
	m, err := measure(rounds, seeds, evalWorkers, nil)
	if err != nil {
		return err
	}
	chM, err := measure(rounds, seeds, evalWorkers, &channel.Config{Model: channelVariantModel})
	if err != nil {
		return err
	}
	report := Report{
		Schema:      1,
		Benchmark:   "ExperimentThroughput/fig4",
		Rounds:      rounds,
		Seeds:       seeds,
		EvalWorkers: evalWorkers,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Baseline:    baselineMeasurement,
		Current:     m,
		Channel:     &ChannelVariant{Model: channelVariantModel, Measurement: chM},
	}
	if report.Baseline.SimsecPerWallsec > 0 {
		report.Speedup = m.SimsecPerWallsec / report.Baseline.SimsecPerWallsec
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %.1f simsec/wallsec (baseline %.1f, %.2fx), %.0f events/op, %.0f ns/op over %d seed(s)\n",
		out, m.SimsecPerWallsec, report.Baseline.SimsecPerWallsec, report.Speedup,
		m.EventsPerOp, m.NsPerOp, seeds)
	fmt.Printf("%s channel variant (%s): %.1f simsec/wallsec, %.0f events/op\n",
		out, channelVariantModel, chM.SimsecPerWallsec, chM.EventsPerOp)
	if ref != nil {
		if err := checkRegression(ref, m, tol); err != nil {
			return err
		}
		return checkChannelRegression(ref, chM, tol)
	}
	return nil
}

// checkChannelRegression gates the channel-variant point the same way
// checkRegression gates the analytic point. Reference reports from before
// the variant existed (or for a different model) pass vacuously.
func checkChannelRegression(ref *Report, m Measurement, tol float64) error {
	if ref.Channel == nil || ref.Channel.Model != channelVariantModel || ref.Channel.SimsecPerWallsec <= 0 {
		return nil
	}
	dropPct := (1 - m.SimsecPerWallsec/ref.Channel.SimsecPerWallsec) * 100
	floor := ref.Channel.SimsecPerWallsec * (1 - tol/100)
	if m.SimsecPerWallsec < floor {
		return fmt.Errorf("channel variant (%s) throughput regression: %.1f simsec/wallsec vs reference %.1f (-%.1f%%, tolerance %.1f%%)",
			channelVariantModel, m.SimsecPerWallsec, ref.Channel.SimsecPerWallsec, dropPct, tol)
	}
	fmt.Printf("check: channel variant %.1f simsec/wallsec vs reference %.1f (%+.1f%%) within %.1f%% tolerance\n",
		m.SimsecPerWallsec, ref.Channel.SimsecPerWallsec, -dropPct, tol)
	return nil
}

// readReport loads a previously written BENCH_fig4.json.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// checkRegression compares the fresh measurement against the reference
// report's Current and errors when simulated-time throughput dropped more
// than tol percent — the CI gate that keeps observability (and any other
// change) off the disabled-path hot loop. Speedups and small regressions
// within tolerance pass, since throughput on shared CI hosts is noisy.
func checkRegression(ref *Report, m Measurement, tol float64) error {
	if ref.Current.SimsecPerWallsec <= 0 {
		return fmt.Errorf("reference report has no positive simsec/wallsec to compare against")
	}
	dropPct := (1 - m.SimsecPerWallsec/ref.Current.SimsecPerWallsec) * 100
	floor := ref.Current.SimsecPerWallsec * (1 - tol/100)
	if m.SimsecPerWallsec < floor {
		return fmt.Errorf("throughput regression: %.1f simsec/wallsec vs reference %.1f (-%.1f%%, tolerance %.1f%%)",
			m.SimsecPerWallsec, ref.Current.SimsecPerWallsec, dropPct, tol)
	}
	fmt.Printf("check: %.1f simsec/wallsec vs reference %.1f (%+.1f%%) within %.1f%% tolerance\n",
		m.SimsecPerWallsec, ref.Current.SimsecPerWallsec, -dropPct, tol)
	return nil
}

// measure runs the Figure-4 experiment once per seed and aggregates the
// throughput numbers; a non-nil channel config swaps in that channel model.
// Wall-clock timing here is pure harness measurement; nothing simulated
// depends on it.
func measure(rounds, seeds, evalWorkers int, ch *channel.Config) (Measurement, error) {
	var events uint64
	simSeconds := 0.0
	start := time.Now() //roadlint:allow wallclock harness timing of the benchmark itself
	for s := 1; s <= seeds; s++ {
		out, err := repro.Fig4Channel(rounds, uint64(s), evalWorkers, ch)
		if err != nil {
			return Measurement{}, fmt.Errorf("fig4 seed %d: %w", s, err)
		}
		events += out.Base.EventsProcessed + out.Opp.EventsProcessed
		simSeconds += float64(out.BaseEnd) + float64(out.OppEnd)
	}
	wall := time.Since(start) //roadlint:allow wallclock harness timing of the benchmark itself
	return Measurement{
		NsPerOp:          float64(wall.Nanoseconds()) / float64(seeds),
		EventsPerOp:      float64(events) / float64(seeds),
		SimsecPerWallsec: simSeconds / wall.Seconds(),
	}, nil
}
