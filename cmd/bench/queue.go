package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"roadrunner/internal/campaign"
)

// The queue benchmark measures the two scale levers behind 10^5-run
// manifests: batched lease verbs (one journal append + fsync per batch
// instead of per run) and snapshot compaction (restart replays a
// bounded log tail instead of the whole history). Both are reported as
// host-independent ratios — batched-vs-single throughput and
// full-vs-tail replayed entries — so the gate compares an optimization
// factor, not a raw rate that varies with the CI host's disk.

// QueueArm is one measured protocol arm: the full lifecycle
// (enqueue, claim, start, complete) driven over Runs refs.
type QueueArm struct {
	WallSeconds float64 `json:"wall_seconds"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	// Fsyncs counts journal appends: the durability cost the batched
	// verbs amortize. 4 per run for single verbs; 4 per batch for
	// batched ones.
	Fsyncs int `json:"fsyncs"`
}

// QueueReplay is the restart-cost measurement: how many per-ref journal
// entries each recovery path replayed and how long the open took.
type QueueReplay struct {
	FullEntries     int     `json:"full_entries"`
	TailEntries     int     `json:"tail_entries"`
	SnapshotRefs    int     `json:"snapshot_refs"`
	FullWallSeconds float64 `json:"full_wall_seconds"`
	TailWallSeconds float64 `json:"tail_wall_seconds"`
	// Reduction is full/tail replayed entries — the compaction factor.
	Reduction float64 `json:"reduction"`
}

// QueueReport is the BENCH_queue.json schema.
type QueueReport struct {
	Schema       int    `json:"schema"`
	Benchmark    string `json:"benchmark"`
	Runs         int    `json:"runs"`
	Batch        int    `json:"batch"`
	CompactEvery int    `json:"compact_every"`
	GoVersion    string `json:"go_version"`
	GOMAXPROCS   int    `json:"gomaxprocs"`

	Single  QueueArm `json:"single"`
	Batched QueueArm `json:"batched"`
	// BatchSpeedup is batched/single runs-per-second.
	BatchSpeedup float64 `json:"batch_speedup"`

	Replay QueueReplay `json:"replay"`
}

// runQueue measures the queue protocol arms and writes BENCH_queue.json.
// With check set it gates both ratios against minRatio — the CI gate
// that keeps batching and compaction from silently degrading into the
// per-run protocol they replaced — and prints the drift against the
// reference report's ratios.
func runQueue(runs, batch int, out, check string, minRatio float64) error {
	if runs < 1 || batch < 1 {
		return fmt.Errorf("queue runs and batch must be positive (got %d, %d)", runs, batch)
	}
	var ref *QueueReport
	if check != "" {
		// Load the reference before measuring: -queue-check commonly
		// points at the very file this run overwrites.
		var err error
		if ref, err = readQueueReport(check); err != nil {
			return fmt.Errorf("read reference queue report: %w", err)
		}
	}
	items := queueWorkload(runs)
	compactEvery := 2 * batch

	single, err := benchQueueSingle(items)
	if err != nil {
		return fmt.Errorf("single-verb arm: %w", err)
	}
	batched, err := benchQueueBatched(items, batch, -1, nil)
	if err != nil {
		return fmt.Errorf("batched arm: %w", err)
	}
	replay, err := benchQueueReplay(items, batch, compactEvery)
	if err != nil {
		return fmt.Errorf("replay arm: %w", err)
	}

	report := QueueReport{
		Schema:       1,
		Benchmark:    "QueueProtocol/lifecycle",
		Runs:         runs,
		Batch:        batch,
		CompactEvery: compactEvery,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Single:       single,
		Batched:      batched,
		Replay:       replay,
	}
	if single.RunsPerSec > 0 {
		report.BatchSpeedup = batched.RunsPerSec / single.RunsPerSec
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d runs, batch %d: single %.0f runs/s (%d fsyncs), batched %.0f runs/s (%d fsyncs), %.1fx\n",
		out, runs, batch, single.RunsPerSec, single.Fsyncs, batched.RunsPerSec, batched.Fsyncs, report.BatchSpeedup)
	fmt.Printf("%s replay: full %d entries in %.3fs, snapshot+tail %d entries in %.3fs, %.1fx fewer\n",
		out, replay.FullEntries, replay.FullWallSeconds, replay.TailEntries, replay.TailWallSeconds, replay.Reduction)
	if check != "" {
		return checkQueueRegression(ref, &report, minRatio)
	}
	return nil
}

// checkQueueRegression gates the two optimization ratios. Ratios are
// measured single-host, so unlike raw throughput they survive CI host
// variation; the floor asserts the optimizations still deliver at least
// minRatio over the unoptimized protocol. The reference report's ratios
// are printed for trend visibility.
func checkQueueRegression(ref, cur *QueueReport, minRatio float64) error {
	if ref != nil && ref.BatchSpeedup > 0 {
		fmt.Printf("check: batch speedup %.1fx (reference %.1fx), replay reduction %.1fx (reference %.1fx)\n",
			cur.BatchSpeedup, ref.BatchSpeedup, cur.Replay.Reduction, ref.Replay.Reduction)
	}
	if cur.BatchSpeedup < minRatio {
		return fmt.Errorf("batched-verb speedup regression: %.1fx vs required %.1fx minimum", cur.BatchSpeedup, minRatio)
	}
	if cur.Replay.Reduction < minRatio {
		return fmt.Errorf("snapshot replay-reduction regression: %.1fx vs required %.1fx minimum", cur.Replay.Reduction, minRatio)
	}
	fmt.Printf("check: both ratios clear the %.1fx floor\n", minRatio)
	return nil
}

// queueWorkload builds runs synthetic queue items with distinct refs,
// keys, and minimal specs — the queue journals the spec verbatim and
// never executes it.
func queueWorkload(runs int) []campaign.QueueItem {
	items := make([]campaign.QueueItem, runs)
	for i := range items {
		items[i] = campaign.QueueItem{
			Ref:  fmt.Sprintf("bench/run-%06d", i),
			Key:  fmt.Sprintf("k%06d", i),
			Spec: campaign.RunSpec{Name: "bench"},
		}
	}
	return items
}

// benchQueueSingle drives the full lifecycle through the per-run verbs:
// every enqueue, claim, start, and complete journals and fsyncs its own
// record — the protocol cost the batched verbs exist to amortize.
func benchQueueSingle(items []campaign.QueueItem) (QueueArm, error) {
	dir, err := os.MkdirTemp("", "benchqueue-single-")
	if err != nil {
		return QueueArm{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	q, err := campaign.OpenQueueWithOptions(filepath.Join(dir, "queue.jsonl"), campaign.QueueOptions{CompactEvery: -1})
	if err != nil {
		return QueueArm{}, err
	}
	defer func() { _ = q.Close() }()
	start := time.Now() //roadlint:allow wallclock harness timing of the benchmark itself
	for _, it := range items {
		if err := q.Enqueue(it.Ref, it.Key, it.Spec); err != nil {
			return QueueArm{}, err
		}
	}
	for _, it := range items {
		lease, _, err := q.Claim(it.Ref, "bench-node", 1, 100)
		if err != nil {
			return QueueArm{}, err
		}
		if _, err := q.Start(lease.ID); err != nil {
			return QueueArm{}, err
		}
		if _, err := q.Complete(lease.ID, campaign.RunDone); err != nil {
			return QueueArm{}, err
		}
	}
	wall := time.Since(start).Seconds() //roadlint:allow wallclock harness timing of the benchmark itself
	arm := QueueArm{WallSeconds: wall, Fsyncs: 4 * len(items)}
	if wall > 0 {
		arm.RunsPerSec = float64(len(items)) / wall
	}
	return arm, nil
}

// benchQueueBatched drives the same lifecycle through the batched verbs
// in batches of batch runs, so every batch shares one append+fsync per
// verb. With a non-nil reuseDir the queue directory is kept and handed
// back through it for the caller to reopen (the replay arm) and remove.
func benchQueueBatched(items []campaign.QueueItem, batch, compactEvery int, reuseDir *string) (QueueArm, error) {
	var dir string
	if reuseDir != nil && *reuseDir != "" {
		dir = *reuseDir
	} else {
		var err error
		if dir, err = os.MkdirTemp("", "benchqueue-batched-"); err != nil {
			return QueueArm{}, err
		}
		if reuseDir != nil {
			*reuseDir = dir
		} else {
			defer func() { _ = os.RemoveAll(dir) }()
		}
	}
	q, err := campaign.OpenQueueWithOptions(filepath.Join(dir, "queue.jsonl"), campaign.QueueOptions{CompactEvery: compactEvery})
	if err != nil {
		return QueueArm{}, err
	}
	defer func() { _ = q.Close() }()
	fsyncs := 0
	start := time.Now() //roadlint:allow wallclock harness timing of the benchmark itself
	for lo := 0; lo < len(items); lo += batch {
		hi := min(lo+batch, len(items))
		chunk := items[lo:hi]
		if err := q.EnqueueBatch(chunk); err != nil {
			return QueueArm{}, err
		}
		refs := make([]string, len(chunk))
		for i, it := range chunk {
			refs[i] = it.Ref
		}
		grants, err := q.ClaimBatch(refs, "bench-node", 1, 100)
		if err != nil {
			return QueueArm{}, err
		}
		ids := make([]campaign.LeaseID, len(grants))
		comps := make([]campaign.Completion, len(grants))
		for i, g := range grants {
			if g.Err != nil {
				return QueueArm{}, fmt.Errorf("claim slot %s: %w", g.Ref, g.Err)
			}
			ids[i] = g.Lease.ID
			comps[i] = campaign.Completion{ID: g.Lease.ID, State: campaign.RunDone}
		}
		if _, err := q.StartBatch(ids); err != nil {
			return QueueArm{}, err
		}
		if _, err := q.CompleteBatch(comps); err != nil {
			return QueueArm{}, err
		}
		fsyncs += 4
	}
	wall := time.Since(start).Seconds() //roadlint:allow wallclock harness timing of the benchmark itself
	arm := QueueArm{WallSeconds: wall, Fsyncs: fsyncs}
	if wall > 0 {
		arm.RunsPerSec = float64(len(items)) / wall
	}
	return arm, nil
}

// benchQueueReplay measures restart cost: the identical workload is
// journaled twice — once with compaction disabled, once compacting every
// compactEvery entries — and each log is reopened, counting how many
// per-ref entries recovery replayed.
func benchQueueReplay(items []campaign.QueueItem, batch, compactEvery int) (QueueReplay, error) {
	var rep QueueReplay
	measure := func(every int) (campaign.ReplayStats, float64, error) {
		var dir string
		if _, err := benchQueueBatched(items, batch, every, &dir); err != nil {
			return campaign.ReplayStats{}, 0, err
		}
		defer func() { _ = os.RemoveAll(dir) }()
		start := time.Now() //roadlint:allow wallclock harness timing of the benchmark itself
		q, err := campaign.OpenQueueWithOptions(filepath.Join(dir, "queue.jsonl"), campaign.QueueOptions{CompactEvery: every})
		if err != nil {
			return campaign.ReplayStats{}, 0, err
		}
		wall := time.Since(start).Seconds() //roadlint:allow wallclock harness timing of the benchmark itself
		stats := q.ReplayStats()
		return stats, wall, q.Close()
	}
	full, fullWall, err := measure(-1)
	if err != nil {
		return rep, fmt.Errorf("full-log replay: %w", err)
	}
	tail, tailWall, err := measure(compactEvery)
	if err != nil {
		return rep, fmt.Errorf("snapshot+tail replay: %w", err)
	}
	if !tail.UsedSnapshot {
		return rep, fmt.Errorf("compacting arm (every %d entries) never produced a snapshot", compactEvery)
	}
	rep = QueueReplay{
		FullEntries:     full.LogEntries,
		TailEntries:     tail.LogEntries,
		SnapshotRefs:    tail.SnapshotRefs,
		FullWallSeconds: fullWall,
		TailWallSeconds: tailWall,
	}
	rep.Reduction = float64(rep.FullEntries) / float64(max(rep.TailEntries, 1))
	return rep, nil
}

// readQueueReport loads a previously written BENCH_queue.json.
func readQueueReport(path string) (*QueueReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r QueueReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
