package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"roadrunner/internal/scalebench"
)

// TestScaleWritesReport runs the scaling harness at smoke scale and
// validates the BENCH_scale.json schema end to end, then re-checks against
// the report it just wrote (wide tolerance: this tests mechanics, not the
// host's benchmarking stability).
func TestScaleWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scaling workload")
	}
	out := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := runScale("80,40,80", 3, 20, out, "", 5); err != nil {
		t.Fatalf("runScale: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var r ScaleReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("parse report: %v", err)
	}
	if r.Schema != 1 || r.Benchmark == "" || r.GoVersion == "" || r.Seed != 3 {
		t.Fatalf("incomplete report header: %+v", r)
	}
	if len(r.Points) != 2 || r.Points[0].Vehicles != 40 || r.Points[1].Vehicles != 80 {
		t.Fatalf("points not deduplicated and sorted: %+v", r.Points)
	}
	for _, p := range r.Points {
		if p.WallSeconds <= 0 || p.SimsecPerWallsec <= 0 || p.Checksum == 0 {
			t.Fatalf("implausible point: %+v", p)
		}
		if p.NaiveWallSeconds <= 0 || p.NaiveMeasured {
			t.Fatalf("naive extrapolation missing or mislabeled at %d vehicles: %+v", p.Vehicles, p)
		}
	}
	if !r.NaiveAnchor.NaiveMeasured || r.NaiveAnchor.Vehicles != naiveAnchorVehicles {
		t.Fatalf("naive anchor not measured: %+v", r.NaiveAnchor)
	}
	if err := runScale("40", 3, 20, filepath.Join(t.TempDir(), "smoke.json"), out, 95); err != nil {
		t.Fatalf("self-check against fresh report: %v", err)
	}
}

func TestScaleRejectsBadInputs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.json")
	if err := runScale("", 1, 20, out, "", 5); err == nil {
		t.Fatal("want error for empty size list")
	}
	if err := runScale("10,-3", 1, 20, out, "", 5); err == nil {
		t.Fatal("want error for negative size")
	}
	if err := runScale("10,zebra", 1, 20, out, "", 5); err == nil {
		t.Fatal("want error for non-numeric size")
	}
	if err := runScale("10", 1, 20, out, filepath.Join(t.TempDir(), "missing.json"), 5); err == nil {
		t.Fatal("want error for missing reference report")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes(" 500, 50,5000 ,50,")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{50, 500, 5000}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseSizes = %v, want %v", got, want)
	}
}

// TestCheckScaleRegression exercises the per-point gate: matching points
// compare, regressions fail, points with different fleet sizes or horizons
// are skipped, and a report with nothing comparable is an error.
func TestCheckScaleRegression(t *testing.T) {
	ref := &ScaleReport{Points: []ScalePoint{
		{Stats: statsFor(500, 300), SimsecPerWallsec: 100},
		{Stats: statsFor(5000, 300), SimsecPerWallsec: 50},
	}}
	ok := &ScaleReport{Points: []ScalePoint{{Stats: statsFor(500, 300), SimsecPerWallsec: 97}}}
	if err := checkScaleRegression(ref, ok, 5); err != nil {
		t.Fatalf("within-tolerance point failed: %v", err)
	}
	bad := &ScaleReport{Points: []ScalePoint{
		{Stats: statsFor(500, 300), SimsecPerWallsec: 101},
		{Stats: statsFor(5000, 300), SimsecPerWallsec: 40},
	}}
	if err := checkScaleRegression(ref, bad, 5); err == nil {
		t.Fatal("regressed 5000-vehicle point passed")
	}
	skewedHorizon := &ScaleReport{Points: []ScalePoint{{Stats: statsFor(500, 60), SimsecPerWallsec: 1}}}
	if err := checkScaleRegression(ref, skewedHorizon, 5); err == nil {
		t.Fatal("want error when no point is comparable (horizon mismatch)")
	}
	unknownSize := &ScaleReport{Points: []ScalePoint{{Stats: statsFor(999, 300), SimsecPerWallsec: 1}}}
	if err := checkScaleRegression(ref, unknownSize, 5); err == nil {
		t.Fatal("want error when no point is comparable (size mismatch)")
	}
}

func statsFor(vehicles int, simSeconds float64) scalebench.Stats {
	return scalebench.Stats{Vehicles: vehicles, SimSeconds: simSeconds}
}
