package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchWritesReport runs the harness at smoke scale and validates the
// BENCH_fig4.json schema end to end.
func TestBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) Figure-4 experiment")
	}
	out := filepath.Join(t.TempDir(), "BENCH_fig4.json")
	if err := run(1, 1, 2, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("parse report: %v", err)
	}
	if r.Schema != 1 || r.Benchmark == "" || r.GoVersion == "" {
		t.Fatalf("incomplete report header: %+v", r)
	}
	if r.Current.NsPerOp <= 0 || r.Current.EventsPerOp <= 0 || r.Current.SimsecPerWallsec <= 0 {
		t.Fatalf("non-positive measurement: %+v", r.Current)
	}
	if r.Baseline.SimsecPerWallsec <= 0 || r.Speedup <= 0 {
		t.Fatalf("baseline/speedup missing: %+v", r)
	}
	if r.Rounds != 1 || r.Seeds != 1 || r.EvalWorkers != 2 {
		t.Fatalf("flag echo mismatch: %+v", r)
	}
}

func TestBenchRejectsBadArgs(t *testing.T) {
	if err := run(0, 1, 0, "unused.json"); err == nil {
		t.Fatal("want error for zero rounds")
	}
	if err := run(1, 0, 0, "unused.json"); err == nil {
		t.Fatal("want error for zero seeds")
	}
}
