package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchWritesReport runs the harness at smoke scale and validates the
// BENCH_fig4.json schema end to end.
func TestBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) Figure-4 experiment")
	}
	out := filepath.Join(t.TempDir(), "BENCH_fig4.json")
	if err := run(1, 1, 2, out, "", 5); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("parse report: %v", err)
	}
	if r.Schema != 1 || r.Benchmark == "" || r.GoVersion == "" {
		t.Fatalf("incomplete report header: %+v", r)
	}
	if r.Current.NsPerOp <= 0 || r.Current.EventsPerOp <= 0 || r.Current.SimsecPerWallsec <= 0 {
		t.Fatalf("non-positive measurement: %+v", r.Current)
	}
	if r.Baseline.SimsecPerWallsec <= 0 || r.Speedup <= 0 {
		t.Fatalf("baseline/speedup missing: %+v", r)
	}
	if r.Rounds != 1 || r.Seeds != 1 || r.EvalWorkers != 2 {
		t.Fatalf("flag echo mismatch: %+v", r)
	}
	if r.Channel == nil || r.Channel.Model != channelVariantModel {
		t.Fatalf("channel variant point missing: %+v", r.Channel)
	}
	if r.Channel.SimsecPerWallsec <= 0 || r.Channel.EventsPerOp <= 0 {
		t.Fatalf("non-positive channel variant measurement: %+v", r.Channel)
	}
}

func TestBenchRejectsBadArgs(t *testing.T) {
	if err := run(0, 1, 0, "unused.json", "", 5); err == nil {
		t.Fatal("want error for zero rounds")
	}
	if err := run(1, 0, 0, "unused.json", "", 5); err == nil {
		t.Fatal("want error for zero seeds")
	}
	if err := run(1, 1, 0, "unused.json", filepath.Join(t.TempDir(), "missing.json"), 5); err == nil {
		t.Fatal("want error for missing reference report")
	}
}

// TestCheckRegression exercises the -check comparison logic directly: a
// matching measurement passes, a collapsed one fails, speedups always pass.
func TestCheckRegression(t *testing.T) {
	ref := &Report{Current: Measurement{SimsecPerWallsec: 100}}
	cases := []struct {
		name    string
		current float64
		tol     float64
		wantErr bool
	}{
		{"equal", 100, 5, false},
		{"within tolerance", 96, 5, false},
		{"at boundary", 95, 5, false},
		{"regressed", 90, 5, true},
		{"speedup", 150, 5, false},
		{"zero tolerance regression", 99.9, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkRegression(ref, Measurement{SimsecPerWallsec: tc.current}, tc.tol)
			if (err != nil) != tc.wantErr {
				t.Fatalf("checkRegression(%v, tol %v): err = %v, want error %v", tc.current, tc.tol, err, tc.wantErr)
			}
		})
	}
	if err := checkRegression(&Report{}, Measurement{SimsecPerWallsec: 100}, 5); err == nil {
		t.Fatal("want error for reference without a measurement")
	}
}

// TestCheckChannelRegression covers the channel-variant gate: vacuous for
// references without the point, tolerant within -tol, failing beyond it.
func TestCheckChannelRegression(t *testing.T) {
	if err := checkChannelRegression(&Report{}, Measurement{SimsecPerWallsec: 50}, 5); err != nil {
		t.Fatalf("reference without channel point must pass vacuously: %v", err)
	}
	other := &Report{Channel: &ChannelVariant{Model: "radio", Measurement: Measurement{SimsecPerWallsec: 100}}}
	if err := checkChannelRegression(other, Measurement{SimsecPerWallsec: 1}, 5); err != nil {
		t.Fatalf("reference for a different model must pass vacuously: %v", err)
	}
	ref := &Report{Channel: &ChannelVariant{Model: channelVariantModel, Measurement: Measurement{SimsecPerWallsec: 100}}}
	if err := checkChannelRegression(ref, Measurement{SimsecPerWallsec: 96}, 5); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	if err := checkChannelRegression(ref, Measurement{SimsecPerWallsec: 90}, 5); err == nil {
		t.Fatal("want error for channel variant regression")
	}
}
