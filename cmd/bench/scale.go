package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"roadrunner/internal/scalebench"
	"roadrunner/internal/sim"
)

// naiveAnchorVehicles is the fleet size at which the O(n²) reference
// implementation is actually measured; larger fleets get a quadratic
// extrapolation from this anchor. Small enough to stay cheap, large enough
// that the pair scan dominates the measurement.
const naiveAnchorVehicles = 120

// ScalePoint is one fleet size on the scaling curve: the deterministic
// workload stats plus this host's wall-clock measurement, and the
// comparison against the extrapolated naive baseline.
type ScalePoint struct {
	scalebench.Stats
	WallSeconds      float64 `json:"wall_seconds"`
	SimsecPerWallsec float64 `json:"simsec_per_wallsec"`
	// NaiveWallSeconds is the O(n²)+rebuild reference cost for this fleet:
	// measured directly at the anchor size, extrapolated quadratically from
	// the anchor above it. The extrapolation ignores the naive path's
	// linear-cost terms, which understates it — the speedup is conservative.
	NaiveWallSeconds float64 `json:"naive_wall_seconds"`
	NaiveMeasured    bool    `json:"naive_measured"`
	SpeedupVsNaive   float64 `json:"speedup_vs_naive"`
}

// ScaleReport is the BENCH_scale.json schema.
type ScaleReport struct {
	Schema         int     `json:"schema"`
	Benchmark      string  `json:"benchmark"`
	Seed           uint64  `json:"seed"`
	HorizonSeconds float64 `json:"horizon_seconds"`
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`

	// NaiveAnchor records the measured O(n²) reference point the
	// extrapolation is anchored to.
	NaiveAnchor ScalePoint `json:"naive_anchor"`

	Points []ScalePoint `json:"points"`
}

// scaleReps is how many times each point is measured; the median run is
// reported. Small points finish in milliseconds, where scheduler noise on
// a shared host dwarfs the signal; the median is robust against both slow
// outliers (a descheduled run) and fast ones (a turbo burst), so a tracked
// reference and a later check measure the same typical cost.
const scaleReps = 5

// runScale measures the fleet-size scaling curve and writes BENCH_scale.json.
// With check set it gates every fleet size present in both reports the same
// way the Figure-4 gate works: simulated-time throughput must not drop more
// than tol percent.
func runScale(list string, seed uint64, horizonSec float64, out, check string, tol float64) error {
	sizes, err := parseSizes(list)
	if err != nil {
		return err
	}
	var ref *ScaleReport
	if check != "" {
		// Load the reference before measuring: -scale-check commonly points
		// at the very file this run overwrites.
		if ref, err = readScaleReport(check); err != nil {
			return fmt.Errorf("read reference scale report: %w", err)
		}
	}
	horizon := sim.DurationSeconds(horizonSec)

	report := ScaleReport{
		Schema:         1,
		Benchmark:      "FleetScaling/megacity-tick",
		Seed:           seed,
		HorizonSeconds: horizonSec,
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}

	// Anchor the naive baseline: measure the O(n²)+rebuild reference and
	// the tiled path at the same small fleet, and require their checksums
	// to agree so the two implementations provably ran the same workload.
	anchorCfg := scalebench.Config{Vehicles: naiveAnchorVehicles, Seed: seed, Horizon: horizon, Naive: true}
	anchor, err := measureScalePoint(anchorCfg)
	if err != nil {
		return fmt.Errorf("naive anchor: %w", err)
	}
	anchorCfg.Naive = false
	tiledAnchor, err := measureScalePoint(anchorCfg)
	if err != nil {
		return fmt.Errorf("tiled anchor: %w", err)
	}
	if anchor.Checksum != tiledAnchor.Checksum {
		return fmt.Errorf("naive/tiled checksum mismatch at %d vehicles: %#x vs %#x",
			naiveAnchorVehicles, anchor.Checksum, tiledAnchor.Checksum)
	}
	anchor.NaiveWallSeconds = anchor.WallSeconds
	anchor.NaiveMeasured = true
	anchor.SpeedupVsNaive = 1
	report.NaiveAnchor = anchor

	for _, n := range sizes {
		p, err := measureScalePoint(scalebench.Config{Vehicles: n, Seed: seed, Horizon: horizon})
		if err != nil {
			return fmt.Errorf("%d vehicles: %w", n, err)
		}
		if n == naiveAnchorVehicles {
			p.NaiveWallSeconds = anchor.WallSeconds
			p.NaiveMeasured = true
		} else {
			ratio := float64(n) / float64(naiveAnchorVehicles)
			p.NaiveWallSeconds = anchor.WallSeconds * ratio * ratio
		}
		if p.WallSeconds > 0 {
			p.SpeedupVsNaive = p.NaiveWallSeconds / p.WallSeconds
		}
		report.Points = append(report.Points, p)
		fmt.Printf("scale %6d vehicles: %8.3fs wall, %9.1f simsec/wallsec, %8d pairs, %6.1fx vs naive\n",
			p.Vehicles, p.WallSeconds, p.SimsecPerWallsec, p.PairObservations, p.SpeedupVsNaive)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d point(s), horizon %.0fs, seed %d\n", out, len(report.Points), horizonSec, seed)
	if ref != nil {
		return checkScaleRegression(ref, &report, tol)
	}
	return nil
}

// measureScalePoint runs one scaling point scaleReps times and reports the
// median wall time. The workload itself is deterministic; only WallSeconds
// and the derived rates vary by host.
func measureScalePoint(cfg scalebench.Config) (ScalePoint, error) {
	walls := make([]float64, 0, scaleReps)
	var stats *scalebench.Stats
	for rep := 0; rep < scaleReps; rep++ {
		start := time.Now() //roadlint:allow wallclock harness timing of the benchmark itself
		s, err := scalebench.Run(cfg)
		if err != nil {
			return ScalePoint{}, err
		}
		walls = append(walls, time.Since(start).Seconds()) //roadlint:allow wallclock harness timing of the benchmark itself
		stats = s
	}
	sort.Float64s(walls)
	p := ScalePoint{Stats: *stats, WallSeconds: walls[len(walls)/2]}
	if p.WallSeconds > 0 {
		p.SimsecPerWallsec = p.Stats.SimSeconds / p.WallSeconds
	}
	return p, nil
}

// checkScaleRegression gates every fleet size present in both reports:
// simulated-time throughput must not drop more than tol percent below the
// reference. Points only one report has (e.g. a CI smoke run measuring a
// subset of the tracked curve) are skipped.
func checkScaleRegression(ref, cur *ScaleReport, tol float64) error {
	refBy := make(map[int]ScalePoint, len(ref.Points))
	for _, p := range ref.Points {
		refBy[p.Vehicles] = p
	}
	compared := 0
	var failures []string
	for _, p := range cur.Points {
		r, ok := refBy[p.Vehicles]
		if !ok || r.SimsecPerWallsec <= 0 || r.SimSeconds != p.SimSeconds {
			continue
		}
		compared++
		dropPct := (1 - p.SimsecPerWallsec/r.SimsecPerWallsec) * 100
		if p.SimsecPerWallsec < r.SimsecPerWallsec*(1-tol/100) {
			failures = append(failures, fmt.Sprintf(
				"%d vehicles: %.1f simsec/wallsec vs reference %.1f (-%.1f%%)",
				p.Vehicles, p.SimsecPerWallsec, r.SimsecPerWallsec, dropPct))
			continue
		}
		fmt.Printf("check %6d vehicles: %.1f simsec/wallsec vs reference %.1f (%+.1f%%) within %.1f%% tolerance\n",
			p.Vehicles, p.SimsecPerWallsec, r.SimsecPerWallsec, -dropPct, tol)
	}
	if len(failures) > 0 {
		return fmt.Errorf("scaling regression:\n  %s", strings.Join(failures, "\n  "))
	}
	if compared == 0 {
		return fmt.Errorf("no comparable points between reference and current scale reports")
	}
	return nil
}

// parseSizes parses the -scale flag: comma-separated positive fleet sizes,
// deduplicated and sorted ascending.
func parseSizes(list string) ([]int, error) {
	seen := make(map[int]bool)
	var out []int
	for _, field := range strings.Split(list, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		n, err := strconv.Atoi(field)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid fleet size %q in -scale", field)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scale lists no fleet sizes")
	}
	sort.Ints(out)
	return out, nil
}

// readScaleReport loads a previously written BENCH_scale.json.
func readScaleReport(path string) (*ScaleReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ScaleReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
