// Command chanfit fits a data-driven channel table from a recorded channel
// trace: it reads the canonical chantrace CSV a recorded run emits (see
// `roadrunner -channel-record`), bins the samples by (kind, distance, size,
// load), and writes the canonical chantable CSV the oracle channel model
// replays.
//
// Usage:
//
//	chanfit -in trace.csv -out table.csv \
//	        [-dist 50,150,300,600] [-size 32768,131072,524288] \
//	        [-load 1,2,4,8] [-min-samples 1]
//
// The edge flags name the interior bin edges per axis; each axis implicitly
// gains a tail bin to +Inf, and the distance axis an unknown-distance bin
// for links without positions. Fitting is deterministic: the same trace and
// the same edges produce a byte-identical table.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"roadrunner/internal/channel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chanfit:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("chanfit", flag.ContinueOnError)
	fs.SetOutput(stdout)
	in := fs.String("in", "", "input chantrace CSV (required)")
	out := fs.String("out", "", "output chantable CSV (default: stdout)")
	dist := fs.String("dist", "", "comma-separated interior distance bin edges in metres (default: fitter default)")
	size := fs.String("size", "", "comma-separated interior payload-size bin edges in bytes (default: fitter default)")
	load := fs.String("load", "", "comma-separated interior in-flight-load bin edges (default: fitter default)")
	minSamples := fs.Int("min-samples", 0, "drop bins with fewer samples (0 = fitter default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	fc := channel.DefaultFitConfig()
	for _, ax := range []struct {
		name string
		raw  string
		dst  *[]float64
	}{
		{"dist", *dist, &fc.DistEdgesM},
		{"size", *size, &fc.SizeEdges},
		{"load", *load, &fc.LoadEdges},
	} {
		if ax.raw == "" {
			continue
		}
		edges, err := parseEdges(ax.raw)
		if err != nil {
			return fmt.Errorf("-%s: %w", ax.name, err)
		}
		*ax.dst = edges
	}
	if *minSamples > 0 {
		fc.MinSamples = *minSamples
	}

	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	defer func() { _ = f.Close() }()
	samples, err := channel.ParseTrace(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *in, err)
	}

	table, err := channel.Fit(samples, fc)
	if err != nil {
		return err
	}

	if *out == "" {
		return channel.WriteTable(stdout, table)
	}
	of, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer func() { _ = of.Close() }()
	if err := channel.WriteTable(of, table); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fitted %d samples into %d bins; wrote %s\n", len(samples), len(table.Bins), *out)
	return nil
}

// parseEdges parses a comma-separated, strictly increasing, positive edge
// list.
func parseEdges(raw string) ([]float64, error) {
	parts := strings.Split(raw, ",")
	edges := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad edge %q", p)
		}
		if v <= 0 {
			return nil, fmt.Errorf("edge %v is not positive", v)
		}
		if n := len(edges); n > 0 && v <= edges[n-1] {
			return nil, fmt.Errorf("edges must be strictly increasing at %v", v)
		}
		edges = append(edges, v)
	}
	return edges, nil
}
