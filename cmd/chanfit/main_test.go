package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roadrunner/internal/channel"
)

// writeTrace writes a synthetic chantrace CSV with enough samples to
// populate one v2c bin.
func writeTrace(t *testing.T, dir string) string {
	t.Helper()
	samples := []channel.Sample{
		{Kind: channel.KindV2C, T: 10, DistanceM: 120, SizeBytes: 60000, Load: 0, DurationS: 0.5, Outcome: channel.OutcomeDelivered},
		{Kind: channel.KindV2C, T: 20, DistanceM: 130, SizeBytes: 60000, Load: 0, DurationS: 0.6, Outcome: channel.OutcomeDelivered},
		{Kind: channel.KindV2C, T: 30, DistanceM: 125, SizeBytes: 60000, Load: 0, DurationS: 0, Outcome: channel.OutcomeChannel},
		{Kind: channel.KindV2X, T: 40, DistanceM: 80, SizeBytes: 60000, Load: 1, DurationS: 0.3, Outcome: channel.OutcomeDelivered},
	}
	path := filepath.Join(dir, "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if err := channel.WriteTrace(f, samples); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestChanfitRoundTrip drives the CLI end to end: fit a synthetic trace to
// a file, re-parse the table, and check the fitted bins are replayable.
func TestChanfitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := writeTrace(t, dir)
	out := filepath.Join(dir, "table.csv")

	var stdout bytes.Buffer
	if err := run([]string{"-in", trace, "-out", out}, &stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("stdout %q does not confirm the write", stdout.String())
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	table, err := channel.ParseTable(f)
	if err != nil {
		t.Fatalf("parse fitted table: %v", err)
	}
	if len(table.Bins) == 0 {
		t.Fatal("fitted table has no bins")
	}
	if _, err := channel.NewOracle(&channel.OracleConfig{Table: table.Bins}); err != nil {
		t.Fatalf("fitted table not replayable: %v", err)
	}
}

// TestChanfitStdoutAndEdges checks the stdout path and custom bin edges.
func TestChanfitStdoutAndEdges(t *testing.T) {
	dir := t.TempDir()
	trace := writeTrace(t, dir)

	var stdout bytes.Buffer
	if err := run([]string{"-in", trace, "-dist", "100,200", "-size", "1000", "-load", "2", "-min-samples", "1"}, &stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(stdout.String(), channel.TableHeader) {
		t.Errorf("stdout does not start with the chantable header: %q", stdout.String())
	}
}

func TestChanfitErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "nope.csv")}, &bytes.Buffer{}); err == nil {
		t.Error("missing trace file accepted")
	}
	trace := writeTrace(t, t.TempDir())
	for _, edges := range []string{"x", "-5", "200,100", "0"} {
		if err := run([]string{"-in", trace, "-dist", edges}, &bytes.Buffer{}); err == nil {
			t.Errorf("bad edge list %q accepted", edges)
		}
	}
}
