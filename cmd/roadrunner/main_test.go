package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"roadrunner/internal/comm"
	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
)

func TestBuildStrategyAllNames(t *testing.T) {
	for _, name := range []string{"fedavg", "base", "opp", "opportunistic", "gossip", "centralized", "hybrid", "rsu", "rsu-assisted"} {
		s, err := buildStrategy(name, 3)
		if err != nil {
			t.Fatalf("buildStrategy(%q): %v", name, err)
		}
		if s.Name() == "" {
			t.Fatalf("strategy %q has empty name", name)
		}
	}
	if _, err := buildStrategy("bogus", 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestPrintSummary(t *testing.T) {
	rec := metrics.NewRecorder()
	if err := rec.Record(metrics.SeriesAccuracy, 30, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := rec.Record(metrics.SeriesAccuracy, 60, 0.4); err != nil {
		t.Fatal(err)
	}
	rec.Add(metrics.CounterRounds, 2)
	res := &core.Result{
		Metrics: rec,
		Comm: map[string]comm.Stats{
			"v2c": {MessagesSent: 10, MessagesDelivered: 9, MessagesFailed: 1, BytesDelivered: 2_000_000},
		},
		End:           90,
		Wall:          42 * time.Millisecond,
		FinalAccuracy: 0.4,
	}
	var sb strings.Builder
	printSummary(&sb, "fedavg", res)
	out := sb.String()
	for _, want := range []string{"fedavg", "final accuracy:   0.400", "rounds completed: 2", "v2c", "2.00 MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTo(t *testing.T) {
	rec := metrics.NewRecorder()
	rec.Add("x", 1)
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := writeTo(path, rec.WriteCSV); err != nil {
		t.Fatalf("writeTo: %v", err)
	}
	if err := writeTo(filepath.Join(t.TempDir(), "no", "dir.csv"), rec.WriteCSV); err == nil {
		t.Fatal("writeTo into missing dir succeeded")
	}
}
