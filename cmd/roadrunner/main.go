// Command roadrunner runs a single VCPS learning-strategy experiment and
// writes its metrics.
//
// Usage:
//
//	roadrunner -strategy fedavg|opp|gossip|centralized|hybrid \
//	           [-config config.json] [-rounds N] [-seed S] \
//	           [-channel radio] [-channel-table table.csv] \
//	           [-channel-record trace.csv] \
//	           [-metrics out.csv] [-json out.json] [-v]
//
// Without -config, the paper's evaluation environment (DefaultConfig) is
// used. The config file holds a JSON-serialized experiment configuration;
// see `roadrunner -print-config` for a template.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"roadrunner/internal/channel"
	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
	"roadrunner/internal/strategy"
	"roadrunner/internal/textplot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roadrunner:", err)
		os.Exit(1)
	}
}

func run() error {
	stratName := flag.String("strategy", "fedavg", "learning strategy: fedavg, opp, gossip, centralized, hybrid, rsu")
	configPath := flag.String("config", "", "JSON experiment config (default: the paper's evaluation environment)")
	rounds := flag.Int("rounds", 0, "override the strategy's round count (0 = strategy default)")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = config value)")
	chModel := flag.String("channel", "", "channel model: analytic, radio, queued, radio+queued, oracle (default: config value)")
	chTable := flag.String("channel-table", "", "chantable CSV for -channel oracle (see cmd/chanfit)")
	chRecord := flag.String("channel-record", "", "record the per-transfer channel trace to this chantrace CSV")
	metricsOut := flag.String("metrics", "", "write metrics CSV to this path")
	jsonOut := flag.String("json", "", "write metrics JSON to this path")
	printConfig := flag.Bool("print-config", false, "print the default config JSON and exit")
	small := flag.Bool("small", false, "use the laptop-scale SmallConfig environment")
	verbose := flag.Bool("v", false, "log strategy diagnostics to stderr")
	flag.Parse()

	if *printConfig {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(core.DefaultConfig())
	}

	cfg := core.DefaultConfig()
	if *small {
		cfg = core.SmallConfig()
	}
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			return fmt.Errorf("read config: %w", err)
		}
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return fmt.Errorf("parse config: %w", err)
		}
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *verbose {
		cfg.LogWriter = os.Stderr
	}
	if *chModel != "" {
		ch := &channel.Config{Model: *chModel}
		if *chTable != "" {
			ch.Oracle = &channel.OracleConfig{TablePath: *chTable}
		}
		cfg.Comm.Channel = ch
	} else if *chTable != "" {
		return fmt.Errorf("-channel-table requires -channel oracle")
	}
	if *chRecord != "" {
		cfg.ChannelRecord = true
	}

	strat, err := buildStrategy(*stratName, *rounds)
	if err != nil {
		return err
	}

	exp, err := core.New(cfg, strat)
	if err != nil {
		return err
	}
	fmt.Printf("running %s (seed %d)...\n", strat.Name(), cfg.Seed)
	res, err := exp.Run()
	if err != nil {
		return err
	}

	printSummary(os.Stdout, strat.Name(), res)
	if *chRecord != "" {
		if err := writeTo(*chRecord, res.ChannelLog.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d channel samples)\n", *chRecord, res.ChannelLog.Len())
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, res.Metrics.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, res.Metrics.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

func buildStrategy(name string, rounds int) (strategy.Strategy, error) {
	switch name {
	case "fedavg", "base":
		c := strategy.DefaultFedAvgConfig()
		if rounds > 0 {
			c.Rounds = rounds
		}
		return strategy.NewFederatedAveraging(c)
	case "opp", "opportunistic":
		c := strategy.DefaultOppConfig()
		if rounds > 0 {
			c.Rounds = rounds
		}
		return strategy.NewOpportunistic(c)
	case "gossip":
		return strategy.NewGossip(strategy.DefaultGossipConfig())
	case "centralized":
		c := strategy.DefaultCentralizedConfig()
		if rounds > 0 {
			c.Rounds = rounds
		}
		return strategy.NewCentralized(c)
	case "hybrid":
		return strategy.NewHybrid(strategy.DefaultHybridConfig())
	case "rsu", "rsu-assisted":
		c := strategy.DefaultRSUAssistedConfig()
		if rounds > 0 {
			c.Rounds = rounds
		}
		return strategy.NewRSUAssisted(c)
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

func printSummary(w io.Writer, name string, res *core.Result) {
	fmt.Fprintf(w, "\n== %s: finished at t=%.0f s (wall %v, %d events) ==\n",
		name, float64(res.End), res.Wall.Round(1e6), res.EventsProcessed)

	if acc := res.Metrics.Series(metrics.SeriesAccuracy); acc != nil && acc.Len() > 1 {
		pts := make([]textplot.Point, acc.Len())
		for i, p := range acc.Points {
			pts[i] = textplot.Point{X: float64(p.T), Y: p.Value}
		}
		fmt.Fprint(w, textplot.Line([]textplot.Series{{Name: "global accuracy", Points: pts}}, 60, 12))
	}
	fmt.Fprintf(w, "final accuracy:   %.3f\n", res.FinalAccuracy)
	fmt.Fprintf(w, "rounds completed: %.0f\n", res.Metrics.Counter(metrics.CounterRounds))
	fmt.Fprintf(w, "train tasks:      %.0f\n", res.Metrics.Counter(metrics.CounterTrainTasks))
	fmt.Fprintf(w, "discarded models: %.0f\n", res.Metrics.Counter(metrics.CounterDiscardedModels))
	for _, kind := range []string{"v2c", "v2x", "wired"} {
		st := res.Comm[kind]
		if st.MessagesSent == 0 {
			continue
		}
		fmt.Fprintf(w, "%-5s traffic:    %d msgs sent, %d delivered, %d failed, %.2f MB delivered\n",
			kind, st.MessagesSent, st.MessagesDelivered, st.MessagesFailed,
			float64(st.BytesDelivered)/1e6)
	}
}

func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	return write(f)
}
