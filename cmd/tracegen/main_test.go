package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roadrunner/internal/mobility"
)

// genArgs returns small-scale flags writing to path.
func genArgs(path string, extra ...string) []string {
	args := []string{
		"-vehicles", "6", "-hours", "0.25", "-rows", "4", "-cols", "4",
		"-seed", "7", "-out", path,
	}
	return append(args, extra...)
}

func TestGeneratesParseableTraces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.csv")
	var out bytes.Buffer
	if err := run(genArgs(path), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("missing summary line in output:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open output: %v", err)
	}
	defer func() { _ = f.Close() }()
	ts, err := mobility.ReadCSV(f)
	if err != nil {
		t.Fatalf("generated trace does not re-parse: %v", err)
	}
	if ts.NumVehicles() != 6 {
		t.Fatalf("fleet size = %d, want 6", ts.NumVehicles())
	}
	if want := 0.25 * 3600; float64(ts.Horizon) != want {
		t.Fatalf("horizon = %v, want %v", float64(ts.Horizon), want)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	dir := t.TempDir()
	read := func(name string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := run(genArgs(path), new(bytes.Buffer)); err != nil {
			t.Fatalf("run: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := read("a.csv"), read("b.csv")
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different trace files")
	}
	path := filepath.Join(dir, "c.csv")
	if err := run(append(genArgs(path), "-seed", "8"), new(bytes.Buffer)); err != nil {
		t.Fatalf("run: %v", err)
	}
	c, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical trace files")
	}
}

func TestStatsFlagPrintsFleetSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.csv")
	var out bytes.Buffer
	if err := run(genArgs(path, "-stats"), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"mean on-fraction:", "ignition transitions:", "road network:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestErrorPaths(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", genArgs(filepath.Join(dir, "x.csv"), "-nope")},
		{"positional junk", genArgs(filepath.Join(dir, "x.csv"), "leftover")},
		{"bad flag value", []string{"-vehicles", "many"}},
		{"zero vehicles", []string{"-vehicles", "0", "-out", filepath.Join(dir, "x.csv")}},
		{"negative hours", genArgs(filepath.Join(dir, "x.csv"), "-hours", "-1")},
		{"zero grid", genArgs(filepath.Join(dir, "x.csv"), "-rows", "0")},
		{"unwritable output", genArgs(filepath.Join(dir, "missing", "x.csv"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args, new(bytes.Buffer)); err == nil {
				t.Fatal("run unexpectedly succeeded")
			}
		})
	}
}
