// Command tracegen generates synthetic fleet GPS traces — the framework's
// stand-in for the paper's proprietary Gothenburg dataset — and writes them
// in the CSV trace format the core simulator replays (Config.TraceFile).
//
// Usage:
//
//	tracegen -vehicles 120 -hours 5 -seed 1 -out traces.csv
//
// The road network is a jittered urban grid (see internal/roadnet); fleet
// behaviour (trip/dwell alternation, ignition churn) is configurable via
// flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"roadrunner/internal/mobility"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	vehicles := fs.Int("vehicles", 120, "fleet size")
	hours := fs.Float64("hours", 5, "trace duration in hours")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "traces.csv", "output CSV path")
	rows := fs.Int("rows", 20, "road-grid rows")
	cols := fs.Int("cols", 20, "road-grid columns")
	spacing := fs.Float64("spacing", 400, "block edge length in meters")
	offProb := fs.Float64("off-prob", 0.5, "probability a parked vehicle is turned off")
	stats := fs.Bool("stats", false, "print fleet statistics after generation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	grid := roadnet.DefaultGridConfig()
	grid.Rows, grid.Cols, grid.Spacing = *rows, *cols, *spacing

	fleet := mobility.DefaultGenConfig()
	fleet.Vehicles = *vehicles
	fleet.Horizon = sim.Duration(*hours * 3600)
	fleet.OffWhenParkedProb = *offProb

	root := sim.NewRNG(*seed)
	graph, err := roadnet.Generate(grid, root.Fork("roadnet"))
	if err != nil {
		return err
	}
	traces, err := mobility.Generate(fleet, graph, root.Fork("mobility"))
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer func() { _ = f.Close() }()
	if err := mobility.WriteCSV(f, traces); err != nil {
		return err
	}
	samples := 0
	for _, tr := range traces.Traces {
		samples += len(tr.Samples)
	}
	fmt.Fprintf(stdout, "wrote %s: %d vehicles, %d waypoints, horizon %.0f s\n",
		*out, traces.NumVehicles(), samples, float64(traces.Horizon))

	if *stats {
		var onSum float64
		transitions := 0
		for _, tr := range traces.Traces {
			onSum += tr.OnFraction(traces.Horizon)
			transitions += len(tr.Transitions())
		}
		fmt.Fprintf(stdout, "mean on-fraction:     %.2f\n", onSum/float64(traces.NumVehicles()))
		fmt.Fprintf(stdout, "ignition transitions: %d\n", transitions)
		fmt.Fprintf(stdout, "road network:         %d nodes, %d directed segments\n",
			graph.NumNodes(), graph.NumEdges())
	}
	return nil
}
