// Command tracegen generates synthetic fleet GPS traces — the framework's
// stand-in for the paper's proprietary Gothenburg dataset — and writes them
// in the CSV trace format the core simulator replays (Config.TraceFile).
//
// Usage:
//
//	tracegen -vehicles 120 -hours 5 -seed 1 -out traces.csv
//
// The road network is a jittered urban grid (see internal/roadnet); fleet
// behaviour (trip/dwell alternation, ignition churn) is configurable via
// flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"roadrunner/internal/mobility"
	"roadrunner/internal/roadnet"
	"roadrunner/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	vehicles := flag.Int("vehicles", 120, "fleet size")
	hours := flag.Float64("hours", 5, "trace duration in hours")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "traces.csv", "output CSV path")
	rows := flag.Int("rows", 20, "road-grid rows")
	cols := flag.Int("cols", 20, "road-grid columns")
	spacing := flag.Float64("spacing", 400, "block edge length in meters")
	offProb := flag.Float64("off-prob", 0.5, "probability a parked vehicle is turned off")
	stats := flag.Bool("stats", false, "print fleet statistics after generation")
	flag.Parse()

	grid := roadnet.DefaultGridConfig()
	grid.Rows, grid.Cols, grid.Spacing = *rows, *cols, *spacing

	fleet := mobility.DefaultGenConfig()
	fleet.Vehicles = *vehicles
	fleet.Horizon = sim.Duration(*hours * 3600)
	fleet.OffWhenParkedProb = *offProb

	root := sim.NewRNG(*seed)
	graph, err := roadnet.Generate(grid, root.Fork("roadnet"))
	if err != nil {
		return err
	}
	traces, err := mobility.Generate(fleet, graph, root.Fork("mobility"))
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer func() { _ = f.Close() }()
	if err := mobility.WriteCSV(f, traces); err != nil {
		return err
	}
	samples := 0
	for _, tr := range traces.Traces {
		samples += len(tr.Samples)
	}
	fmt.Printf("wrote %s: %d vehicles, %d waypoints, horizon %.0f s\n",
		*out, traces.NumVehicles(), samples, float64(traces.Horizon))

	if *stats {
		var onSum float64
		transitions := 0
		for _, tr := range traces.Traces {
			onSum += tr.OnFraction(traces.Horizon)
			transitions += len(tr.Transitions())
		}
		fmt.Printf("mean on-fraction:     %.2f\n", onSum/float64(traces.NumVehicles()))
		fmt.Printf("ignition transitions: %d\n", transitions)
		fmt.Printf("road network:         %d nodes, %d directed segments\n",
			graph.NumNodes(), graph.NumEdges())
	}
	return nil
}
