package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"

	"roadrunner/internal/repro"
	"roadrunner/internal/sim"
	"roadrunner/internal/textplot"
)

const defaultAblationRounds = 20

func ablationRounds(rounds int) int {
	if rounds <= 0 {
		return defaultAblationRounds
	}
	return rounds
}

func printRows(title string, rows []repro.Row) {
	fmt.Printf("== %s ==\n", title)
	var table [][]string
	labels := make([]string, len(rows))
	accs := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Param
		accs[i] = r.FinalAcc
		table = append(table, []string{
			r.Param,
			fmt.Sprintf("%.3f", r.FinalAcc),
			fmt.Sprintf("%.1f", r.AvgExchanges),
			fmt.Sprintf("%.1f", r.AvgContribs),
			fmt.Sprintf("%.0f", r.SimEnd),
			fmt.Sprintf("%.2f", r.V2CMB),
			fmt.Sprintf("%.2f", r.V2XMB),
			fmt.Sprintf("%.0f", r.Discarded),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"param", "acc", "exch/rnd", "contrib/rnd", "end[s]", "v2c MB", "v2x MB", "discarded"},
		table))
	fmt.Println("\nfinal accuracy by parameter:")
	fmt.Print(textplot.Bars(labels, accs, 40))
	fmt.Println()
}

func writeRowsCSV(path string, rows []repro.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"param", "final_acc", "avg_exchanges", "avg_contribs", "sim_end_s", "v2c_mb", "v2x_mb", "discarded"}); err != nil {
		return err
	}
	for _, r := range rows {
		row := []string{
			r.Param,
			formatF(r.FinalAcc),
			formatF(r.AvgExchanges),
			formatF(r.AvgContribs),
			formatF(r.SimEnd),
			formatF(r.V2CMB),
			formatF(r.V2XMB),
			formatF(r.Discarded),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	fmt.Printf("wrote %s\n", path)
	return w.Error()
}

func ablationA(rounds int, seed uint64, outDir string) error {
	rows, err := repro.AblationRoundDuration(ablationRounds(rounds), seed,
		[]sim.Duration{50, 100, 200, 400})
	if err != nil {
		return err
	}
	printRows("Ablation A: OPP round duration (more exchange opportunity vs longer runs & churn)", rows)
	return writeRowsCSV(filepath.Join(outDir, "ablation_a_round_duration.csv"), rows)
}

func ablationB(rounds int, seed uint64, outDir string) error {
	rows, err := repro.AblationReporters(ablationRounds(rounds), seed, []int{2, 5, 10, 20})
	if err != nil {
		return err
	}
	printRows("Ablation B: reporters per round (V2C budget vs accuracy)", rows)
	return writeRowsCSV(filepath.Join(outDir, "ablation_b_reporters.csv"), rows)
}

func ablationC(rounds int, seed uint64, outDir string) error {
	rows, err := repro.AblationV2XRange(ablationRounds(rounds), seed,
		[]float64{50, 100, 200, 400})
	if err != nil {
		return err
	}
	printRows("Ablation C: V2X range (vehicle-density proxy for OPP's gain)", rows)
	return writeRowsCSV(filepath.Join(outDir, "ablation_c_v2x_range.csv"), rows)
}

func ablationD(rounds int, seed uint64, outDir string) error {
	points, err := repro.AblationSkew(ablationRounds(rounds), seed, repro.DefaultSkewSweep())
	if err != nil {
		return err
	}
	fmt.Println("== Ablation D: data skew (shards per vehicle; IID = no skew) ==")
	var table [][]string
	for _, p := range points {
		table = append(table, []string{p.Param, fmt.Sprintf("%.3f", p.BaseAcc), fmt.Sprintf("%.3f", p.OppAcc)})
	}
	fmt.Print(textplot.Table([]string{"distribution", "BASE acc", "OPP acc"}, table))
	fmt.Println()

	path := filepath.Join(outDir, "ablation_d_skew.csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"distribution", "base_acc", "opp_acc"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := w.Write([]string{p.Param, formatF(p.BaseAcc), formatF(p.OppAcc)}); err != nil {
			return err
		}
	}
	w.Flush()
	fmt.Printf("wrote %s\n", path)
	return w.Error()
}

func ablationE(rounds int, seed uint64, outDir string) error {
	rows, err := repro.AblationChurn(ablationRounds(rounds), seed,
		[]float64{0, 0.3, 0.5, 0.8})
	if err != nil {
		return err
	}
	printRows("Ablation E: ignition churn (reporter power-off discards collected models)", rows)
	return writeRowsCSV(filepath.Join(outDir, "ablation_e_churn.csv"), rows)
}

func ablationF(rounds int, seed uint64, outDir string) error {
	rows, err := repro.AblationRSUCount(ablationRounds(rounds), seed, []int{2, 4, 8, 16})
	if err != nil {
		return err
	}
	printRows("Ablation F: RSU deployment density (zero-V2C collection, extension)", rows)
	return writeRowsCSV(filepath.Join(outDir, "ablation_f_rsus.csv"), rows)
}

func ablationG(rounds int, seed uint64, outDir string) error {
	points, err := repro.AblationFaults(ablationRounds(rounds), seed, repro.DefaultFaultSweep())
	if err != nil {
		return err
	}
	fmt.Println("== Ablation G: fault scenarios (BASE vs OPP under time-correlated degradation) ==")
	var table [][]string
	for _, p := range points {
		table = append(table, []string{
			p.Scenario, p.Strategy,
			fmt.Sprintf("%.3f", p.FinalAcc),
			fmt.Sprintf("%.0f", p.Faults),
			fmt.Sprintf("%.0f", p.SimEnd),
			fmt.Sprintf("%.2f", p.V2CMB),
			fmt.Sprintf("%.2f", p.V2XMB),
		})
	}
	fmt.Print(textplot.Table([]string{"scenario", "strategy", "acc", "faults", "end[s]", "v2c MB", "v2x MB"}, table))
	fmt.Println()

	return writeFaultPointsCSV(filepath.Join(outDir, "ablation_g_faults.csv"), points)
}

func ablationH(rounds int, seed uint64, outDir string) error {
	points, err := repro.AblationChannels(ablationRounds(rounds), seed)
	if err != nil {
		return err
	}
	fmt.Println("== Ablation H: channel models (BASE vs OPP under radio-realistic transfer times) ==")
	var table [][]string
	for _, p := range points {
		table = append(table, []string{
			p.Model, p.Strategy,
			fmt.Sprintf("%.3f", p.FinalAcc),
			fmt.Sprintf("%.0f", p.SimEnd),
			fmt.Sprintf("%.2f", p.V2CMB),
			fmt.Sprintf("%.2f", p.V2XMB),
			fmt.Sprintf("%.0f", p.FailedMsgs),
		})
	}
	fmt.Print(textplot.Table([]string{"model", "strategy", "acc", "end[s]", "v2c MB", "v2x MB", "failed"}, table))
	fmt.Println()

	return writeChannelPointsCSV(filepath.Join(outDir, "ablation_h_channels.csv"), points)
}

func writeChannelPointsCSV(path string, points []repro.ChannelPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"model", "strategy", "final_acc", "sim_end_s", "v2c_mb", "v2x_mb", "failed_msgs"}); err != nil {
		return err
	}
	for _, p := range points {
		row := []string{
			p.Model, p.Strategy,
			formatF(p.FinalAcc), formatF(p.SimEnd),
			formatF(p.V2CMB), formatF(p.V2XMB), formatF(p.FailedMsgs),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	fmt.Printf("wrote %s\n", path)
	return w.Error()
}

func writeFaultPointsCSV(path string, points []repro.FaultPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"scenario", "strategy", "final_acc", "faults", "sim_end_s", "v2c_mb", "v2x_mb"}); err != nil {
		return err
	}
	for _, p := range points {
		row := []string{
			p.Scenario, p.Strategy,
			formatF(p.FinalAcc), formatF(p.Faults), formatF(p.SimEnd),
			formatF(p.V2CMB), formatF(p.V2XMB),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	fmt.Printf("wrote %s\n", path)
	return w.Error()
}
