package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
	"roadrunner/internal/repro"
	"roadrunner/internal/textplot"
)

// figure4 reproduces the paper's Figure 4: accuracy-over-simulated-time
// curves for BASE and OPP plus the per-round V2X exchange bars.
func figure4(rounds int, seed uint64, outDir string) error {
	if rounds <= 0 {
		rounds = 75 // the paper's setting
	}
	fmt.Printf("== Figure 4: BASE (FL) vs OPP at equal V2C budget — %d rounds, seed %d ==\n", rounds, seed)
	out, err := repro.Fig4(rounds, seed)
	if err != nil {
		return err
	}

	if err := writeAccuracyCSV(filepath.Join(outDir, "fig4_accuracy.csv"), out.Base, out.Opp); err != nil {
		return err
	}
	if err := writeExchangesCSV(filepath.Join(outDir, "fig4_exchanges.csv"), out.Opp); err != nil {
		return err
	}

	fmt.Print(textplot.Line(accuracySeries(out.Base, out.Opp), 64, 16))
	fmt.Println()

	ex := out.Opp.Metrics.Series(metrics.SeriesRoundExchanges)
	if ex != nil {
		values := make([]float64, ex.Len())
		for i, p := range ex.Points {
			values[i] = p.Value
		}
		fmt.Println("V2X exchanges per OPP round (distribution):")
		fmt.Print(textplot.Histogram(values, 5, 40))
		fmt.Println()
	}

	rows := [][]string{
		{"run end [s]", fmt.Sprintf("%.0f", float64(out.BaseEnd)), fmt.Sprintf("%.0f", float64(out.OppEnd))},
		{"late accuracy", fmt.Sprintf("%.3f", out.BaseAccuracy), fmt.Sprintf("%.3f", out.OppAccuracy)},
		{"V2C MB delivered",
			fmt.Sprintf("%.2f", float64(out.Base.Comm["v2c"].BytesDelivered)/1e6),
			fmt.Sprintf("%.2f", float64(out.Opp.Comm["v2c"].BytesDelivered)/1e6)},
		{"V2X MB delivered",
			fmt.Sprintf("%.2f", float64(out.Base.Comm["v2x"].BytesDelivered)/1e6),
			fmt.Sprintf("%.2f", float64(out.Opp.Comm["v2x"].BytesDelivered)/1e6)},
	}
	fmt.Print(textplot.Table([]string{"metric", "BASE", "OPP"}, rows))
	fmt.Printf("\navg V2X exchanges/round: %.2f (paper: just below 10)\n", out.AvgExchanges)
	fmt.Printf("OPP/BASE time ratio:     %.2fx (paper: ~4.5x)\n", out.TimeRatio)
	fmt.Printf("OPP accuracy gain:       %+.0f%% (paper: ~+50%%)\n\n", out.AccuracyGain*100)
	return nil
}

func accuracySeries(base, opp *core.Result) []textplot.Series {
	toPlot := func(res *core.Result, name string) textplot.Series {
		s := res.Metrics.Series(metrics.SeriesAccuracy)
		out := textplot.Series{Name: name}
		if s == nil {
			return out
		}
		for _, p := range s.Points {
			out.Points = append(out.Points, textplot.Point{X: float64(p.T), Y: p.Value})
		}
		return out
	}
	return []textplot.Series{toPlot(base, "BASE accuracy"), toPlot(opp, "OPP accuracy")}
}

func writeAccuracyCSV(path string, base, opp *core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"strategy", "t_s", "accuracy"}); err != nil {
		return err
	}
	emit := func(name string, res *core.Result) error {
		s := res.Metrics.Series(metrics.SeriesAccuracy)
		if s == nil {
			return nil
		}
		for _, p := range s.Points {
			row := []string{name, formatF(float64(p.T)), formatF(p.Value)}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("BASE", base); err != nil {
		return err
	}
	if err := emit("OPP", opp); err != nil {
		return err
	}
	w.Flush()
	fmt.Printf("wrote %s\n", path)
	return w.Error()
}

func writeExchangesCSV(path string, opp *core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"round", "t_s", "v2x_exchanges"}); err != nil {
		return err
	}
	s := opp.Metrics.Series(metrics.SeriesRoundExchanges)
	if s != nil {
		for i, p := range s.Points {
			row := []string{strconv.Itoa(i + 1), formatF(float64(p.T)), formatF(p.Value)}
			if err := w.Write(row); err != nil {
				return err
			}
		}
	}
	w.Flush()
	fmt.Printf("wrote %s\n", path)
	return w.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
