package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
	"roadrunner/internal/repro"
	"roadrunner/internal/sim"
)

func TestFormatF(t *testing.T) {
	if got := formatF(1.5); got != "1.5" {
		t.Fatalf("formatF(1.5) = %q", got)
	}
	if got := formatF(3592); got != "3592" {
		t.Fatalf("formatF(3592) = %q", got)
	}
}

func TestAblationRoundsDefault(t *testing.T) {
	if got := ablationRounds(0); got != defaultAblationRounds {
		t.Fatalf("ablationRounds(0) = %d", got)
	}
	if got := ablationRounds(7); got != 7 {
		t.Fatalf("ablationRounds(7) = %d", got)
	}
}

func TestWriteRowsCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.csv")
	rows := []repro.Row{
		{Param: "a", FinalAcc: 0.5, AvgExchanges: 10, SimEnd: 3592, V2CMB: 9.27},
		{Param: "b", FinalAcc: 0.25, Discarded: 4},
	}
	if err := writeRowsCSV(path, rows); err != nil {
		t.Fatalf("writeRowsCSV: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{"param,final_acc", "a,0.5,10", "b,0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
	if err := writeRowsCSV(filepath.Join(t.TempDir(), "missing", "x.csv"), rows); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}

func TestAccuracySeriesConversion(t *testing.T) {
	mk := func(values ...float64) *core.Result {
		rec := metrics.NewRecorder()
		for i, v := range values {
			if err := rec.Record(metrics.SeriesAccuracy, sim.Time(i), v); err != nil {
				t.Fatal(err)
			}
		}
		return &core.Result{Metrics: rec}
	}
	series := accuracySeries(mk(0.1, 0.2), mk(0.3))
	if len(series) != 2 {
		t.Fatalf("series count = %d", len(series))
	}
	if series[0].Name != "BASE accuracy" || len(series[0].Points) != 2 {
		t.Fatalf("base series = %+v", series[0])
	}
	if series[1].Points[0].Y != 0.3 {
		t.Fatalf("opp point = %+v", series[1].Points[0])
	}
	// Empty recorder: no points but no panic.
	empty := &core.Result{Metrics: metrics.NewRecorder()}
	series = accuracySeries(empty, empty)
	if len(series[0].Points) != 0 {
		t.Fatal("empty result produced points")
	}
}

func TestWriteAccuracyAndExchangesCSV(t *testing.T) {
	rec := metrics.NewRecorder()
	if err := rec.Record(metrics.SeriesAccuracy, 30, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := rec.Record(metrics.SeriesRoundExchanges, 200, 12); err != nil {
		t.Fatal(err)
	}
	res := &core.Result{Metrics: rec}
	dir := t.TempDir()

	accPath := filepath.Join(dir, "acc.csv")
	if err := writeAccuracyCSV(accPath, res, res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(accPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "BASE,30,0.2") || !strings.Contains(string(raw), "OPP,30,0.2") {
		t.Fatalf("accuracy csv wrong:\n%s", raw)
	}

	exPath := filepath.Join(dir, "ex.csv")
	if err := writeExchangesCSV(exPath, res); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(exPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "1,200,12") {
		t.Fatalf("exchanges csv wrong:\n%s", raw)
	}
}
