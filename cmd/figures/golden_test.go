package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"roadrunner/internal/comm"
	"roadrunner/internal/core"
	"roadrunner/internal/metrics"
	"roadrunner/internal/repro"
	"roadrunner/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// checkGolden compares got against testdata/<name>, rewriting the golden
// when the test runs with -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file.\ngot:\n%s\nwant:\n%s\n(run 'go test ./cmd/figures -update' if the change is intended)",
			name, got, want)
	}
}

// goldenResult builds a fixed synthetic result with the series the fig4 CSV
// writers consume.
func goldenResult(t *testing.T) *core.Result {
	t.Helper()
	rec := metrics.NewRecorder()
	record := func(name string, at sim.Time, v float64) {
		t.Helper()
		if err := rec.Record(name, at, v); err != nil {
			t.Fatal(err)
		}
	}
	record(metrics.SeriesAccuracy, 30, 0.25)
	record(metrics.SeriesAccuracy, 60, 0.5)
	record(metrics.SeriesAccuracy, 90, 0.625)
	record(metrics.SeriesRoundExchanges, 30, 4)
	record(metrics.SeriesRoundExchanges, 60, 9)
	record(metrics.SeriesRoundExchanges, 90, 7)
	return &core.Result{
		Metrics:         rec,
		Comm:            map[string]comm.Stats{"v2c": {BytesDelivered: 1 << 20}, "v2x": {}},
		End:             90,
		FinalAccuracy:   0.625,
		EventsProcessed: 123,
	}
}

// TestFig4CSVGolden pins the exact file format of the results/fig4_*.csv
// artifacts — headers and row encoding — so a refactor of the writers
// cannot silently change the published data layout.
func TestFig4CSVGolden(t *testing.T) {
	res := goldenResult(t)
	dir := t.TempDir()

	accPath := filepath.Join(dir, "fig4_accuracy.csv")
	if err := writeAccuracyCSV(accPath, res, res); err != nil {
		t.Fatalf("writeAccuracyCSV: %v", err)
	}
	acc, err := os.ReadFile(accPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4_accuracy.golden.csv", acc)

	exPath := filepath.Join(dir, "fig4_exchanges.csv")
	if err := writeExchangesCSV(exPath, res); err != nil {
		t.Fatalf("writeExchangesCSV: %v", err)
	}
	ex, err := os.ReadFile(exPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4_exchanges.golden.csv", ex)
}

// TestAblationGCSVGolden pins the results/ablation_g_faults.csv format.
func TestAblationGCSVGolden(t *testing.T) {
	points := []repro.FaultPoint{
		{Scenario: "fault-free", Strategy: "BASE", FinalAcc: 0.5, SimEnd: 900, V2CMB: 1.25},
		{Scenario: "blackout", Strategy: "BASE", FinalAcc: 0.375, Faults: 12, SimEnd: 900, V2CMB: 0.75},
		{Scenario: "blackout", Strategy: "OPP", FinalAcc: 0.4375, Faults: 9, SimEnd: 2000, V2CMB: 0.5, V2XMB: 2.5},
	}
	path := filepath.Join(t.TempDir(), "ablation_g_faults.csv")
	if err := writeFaultPointsCSV(path, points); err != nil {
		t.Fatalf("writeFaultPointsCSV: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ablation_g_faults.golden.csv", got)
}

// TestAblationHCSVGolden pins the results/ablation_h_channels.csv format.
func TestAblationHCSVGolden(t *testing.T) {
	points := []repro.ChannelPoint{
		{Model: "analytic", Strategy: "BASE", FinalAcc: 0.5, SimEnd: 900, V2CMB: 1.25},
		{Model: "radio", Strategy: "BASE", FinalAcc: 0.4375, SimEnd: 1100, V2CMB: 1, FailedMsgs: 7},
		{Model: "radio+queued", Strategy: "OPP", FinalAcc: 0.375, SimEnd: 2000, V2CMB: 0.5, V2XMB: 2.5, FailedMsgs: 13},
		{Model: "oracle", Strategy: "OPP", FinalAcc: 0.40625, SimEnd: 1900, V2CMB: 0.625, V2XMB: 2.25, FailedMsgs: 4},
	}
	path := filepath.Join(t.TempDir(), "ablation_h_channels.csv")
	if err := writeChannelPointsCSV(path, points); err != nil {
		t.Fatalf("writeChannelPointsCSV: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ablation_h_channels.golden.csv", got)
}
