package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"roadrunner/internal/core"
	"roadrunner/internal/strategy"
	"roadrunner/internal/textplot"
	"roadrunner/internal/trace"
)

// figureT produces the observability artifact: one traced BASE run and one
// traced OPP run, exported both as Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and as the canonical CSV the
// byte-identity tests are defined over. The spans live on the simulated
// clock, so the timeline shows rounds, transfers, trainings, and fault
// windows in experiment time, not host time.
func figureT(rounds int, seed uint64, outDir string) error {
	if rounds <= 0 {
		rounds = 10 // traces grow linearly with rounds; keep the artifact small
	}
	fmt.Printf("== Trace T: span timelines for BASE and OPP — %d rounds, seed %d ==\n", rounds, seed)

	runs := []struct {
		name  string
		strat func() (strategy.Strategy, error)
	}{
		{"base", func() (strategy.Strategy, error) {
			fa := strategy.DefaultFedAvgConfig()
			fa.Rounds = rounds
			return strategy.NewFederatedAveraging(fa)
		}},
		{"opp", func() (strategy.Strategy, error) {
			oc := strategy.DefaultOppConfig()
			oc.Rounds = rounds
			return strategy.NewOpportunistic(oc)
		}},
	}
	for _, r := range runs {
		s, err := r.strat()
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Trace = true
		exp, err := core.New(cfg, s)
		if err != nil {
			return fmt.Errorf("trace T %s: %w", r.name, err)
		}
		res, err := exp.Run()
		if err != nil {
			return fmt.Errorf("trace T %s: %w", r.name, err)
		}
		if err := writeTrace(res.Trace, outDir, "trace_"+r.name); err != nil {
			return err
		}
		printTraceSummary(r.name, res.Trace)
	}
	fmt.Println("open the .json files in chrome://tracing or https://ui.perfetto.dev")
	fmt.Println()
	return nil
}

// writeTrace exports one trace under both formats: <stem>.json for trace
// viewers, <stem>.csv as the canonical byte-identical form.
func writeTrace(t *trace.Trace, outDir, stem string) error {
	jsonPath := filepath.Join(outDir, stem+".json")
	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("create %s: %w", jsonPath, err)
	}
	err = t.WriteChromeJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", jsonPath, err)
	}
	fmt.Printf("wrote %s\n", jsonPath)

	csvPath := filepath.Join(outDir, stem+".csv")
	b, err := t.CanonicalBytes()
	if err != nil {
		return fmt.Errorf("canonicalize %s: %w", csvPath, err)
	}
	if err := os.WriteFile(csvPath, b, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", csvPath, err)
	}
	fmt.Printf("wrote %s\n", csvPath)
	return nil
}

// printTraceSummary prints per-kind span counts so the terminal run shows
// what the artifact contains without a trace viewer.
func printTraceSummary(name string, t *trace.Trace) {
	byKind := map[string]int{}
	for i := range t.Spans {
		byKind[t.Spans[i].Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	rows := make([][]string, 0, len(kinds))
	for _, k := range kinds {
		rows = append(rows, []string{k, fmt.Sprintf("%d", byKind[k])})
	}
	fmt.Printf("%s: %d spans\n", name, len(t.Spans))
	fmt.Print(textplot.Table([]string{"kind", "spans"}, rows))
	fmt.Println()
}
