// Command figures regenerates the paper's evaluation figures and the
// ablation sweeps from DESIGN.md's experiment index, writing CSV data files
// and printing terminal charts.
//
// Usage:
//
//	figures -fig 4            # the paper's Figure 4 (BASE vs OPP)
//	figures -fig A            # ablation A: OPP round duration
//	figures -fig B            # ablation B: reporters per round
//	figures -fig C            # ablation C: V2X range
//	figures -fig D            # ablation D: data skew
//	figures -fig E            # ablation E: ignition churn
//	figures -fig F            # ablation F: RSU deployment density (extension)
//	figures -fig G            # ablation G: fault scenarios (BASE vs OPP under degradation)
//	figures -fig H            # ablation H: channel models (analytic/radio/queued/oracle)
//	figures -fig T            # trace T: simulated-time span timelines (Chrome JSON + CSV)
//	figures -fig all          # everything
//
// Flags -rounds and -seed scale and re-seed the experiments; -out selects
// the CSV output directory. The paper's Figure 4 uses 75 rounds; ablations
// default to 20 rounds to keep the sweep affordable.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "4", "figure to regenerate: 4, A, B, C, D, E, F, G, H, T, or all")
	rounds := flag.Int("rounds", 0, "rounds per run (0 = figure default: 75 for Fig 4, 20 for ablations)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	out := flag.String("out", "results", "output directory for CSV files")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	runOne := func(name string) error {
		switch name {
		case "4":
			return figure4(*rounds, *seed, *out)
		case "A", "a":
			return ablationA(*rounds, *seed, *out)
		case "B", "b":
			return ablationB(*rounds, *seed, *out)
		case "C", "c":
			return ablationC(*rounds, *seed, *out)
		case "D", "d":
			return ablationD(*rounds, *seed, *out)
		case "E", "e":
			return ablationE(*rounds, *seed, *out)
		case "F", "f":
			return ablationF(*rounds, *seed, *out)
		case "G", "g":
			return ablationG(*rounds, *seed, *out)
		case "H", "h":
			return ablationH(*rounds, *seed, *out)
		case "T", "t":
			return figureT(*rounds, *seed, *out)
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
	}
	if *fig == "all" {
		for _, name := range []string{"4", "A", "B", "C", "D", "E", "F", "G", "H", "T"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*fig)
}
