// Command roadctl is the cluster control CLI: it talks to a roadrunnerd
// coordinator's /v1/cluster/ API to submit campaign manifests, inspect
// campaign and fleet status, follow the merged progress stream, and
// fetch merged canonical results.
//
// Usage:
//
//	roadctl [-addr http://127.0.0.1:8383] submit -f manifest.json
//	roadctl [-addr URL] status <campaign-id>
//	roadctl [-addr URL] nodes
//	roadctl [-addr URL] watch <campaign-id>
//	roadctl [-addr URL] result [-o file] <campaign-id>
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "roadctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("roadctl", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8383", "coordinator base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: roadctl [-addr URL] <submit|status|nodes|watch|result> ...")
	}
	c := &client{base: strings.TrimRight(*addr, "/"), out: out}
	switch cmd, cmdArgs := rest[0], rest[1:]; cmd {
	case "submit":
		return c.submit(cmdArgs)
	case "status":
		return c.status(cmdArgs)
	case "nodes":
		return c.nodes()
	case "watch":
		return c.watch(cmdArgs)
	case "result":
		return c.result(cmdArgs)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

type client struct {
	base string
	out  io.Writer
}

func (c *client) get(path string) (*http.Response, error) {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer func() { _ = resp.Body.Close() }()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return resp, nil
}

// pipe copies a (JSON or text) response body to the output verbatim —
// the API already pretty-prints.
func (c *client) pipe(resp *http.Response) error {
	defer func() { _ = resp.Body.Close() }()
	_, err := io.Copy(c.out, resp.Body)
	return err
}

// submitBackoff caps how long one 429 retry sleeps and how long the
// whole retry loop persists before giving up.
const (
	submitRetryCap    = 10 * time.Second
	submitRetryBudget = 5 * time.Minute
)

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("roadctl submit", flag.ContinueOnError)
	file := fs.String("f", "", "manifest JSON file (- for stdin)")
	wait := fs.Bool("wait", true, "on 429 (backlog full), retry with backoff until admitted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("submit requires -f manifest.json")
	}
	var manifest []byte
	var err error
	if *file == "-" {
		manifest, err = io.ReadAll(os.Stdin)
	} else {
		manifest, err = os.ReadFile(*file)
	}
	if err != nil {
		return err
	}
	// A 429 is admission backpressure, not failure: the coordinator's
	// backlog is at its cap and the manifest should be resubmitted once
	// workers drain it. Honor the Retry-After hint, doubling (capped)
	// while the backlog stays full.
	delay := time.Second
	deadline := time.Now().Add(submitRetryBudget) //roadlint:allow wallclock CLI retry budget at the service edge
	for {
		resp, err := http.Post(c.base+"/v1/cluster/campaigns", "application/json", bytes.NewReader(manifest))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && *wait {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			_ = resp.Body.Close()
			if hint, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && hint > 0 {
				delay = time.Duration(hint) * time.Second
			}
			if delay > submitRetryCap {
				delay = submitRetryCap
			}
			if time.Now().After(deadline) { //roadlint:allow wallclock CLI retry budget at the service edge
				return fmt.Errorf("submit: backlog still full after %s: %s", submitRetryBudget, bytes.TrimSpace(msg))
			}
			fmt.Fprintf(c.out, "roadctl: backlog full, retrying in %s\n", delay)
			time.Sleep(delay) //roadlint:allow wallclock CLI submit backoff pacing at the service edge
			delay *= 2
			continue
		}
		if resp.StatusCode/100 != 2 {
			defer func() { _ = resp.Body.Close() }()
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(msg))
		}
		return c.pipe(resp)
	}
}

func (c *client) status(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: roadctl status <campaign-id>")
	}
	resp, err := c.get("/v1/cluster/campaigns/" + args[0])
	if err != nil {
		return err
	}
	return c.pipe(resp)
}

func (c *client) nodes() error {
	resp, err := c.get("/v1/cluster/nodes")
	if err != nil {
		return err
	}
	return c.pipe(resp)
}

// watch follows the campaign's merged SSE stream, printing one event
// per line until the stream closes (the campaign's terminal event).
func (c *client) watch(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: roadctl watch <campaign-id>")
	}
	resp, err := c.get("/v1/cluster/campaigns/" + args[0] + "/events")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			fmt.Fprintln(c.out, data)
		}
	}
	return sc.Err()
}

func (c *client) result(args []string) error {
	fs := flag.NewFlagSet("roadctl result", flag.ContinueOnError)
	outFile := fs.String("o", "", "write merged result to file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: roadctl result [-o file] <campaign-id>")
	}
	resp, err := c.get("/v1/cluster/campaigns/" + fs.Arg(0) + "/result")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, resp.Body); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	_, err = io.Copy(c.out, resp.Body)
	return err
}
