package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roadrunner/internal/campaign"
	"roadrunner/internal/cluster"
)

// startCoordinator serves a real coordinator over httptest and returns
// its base URL plus the shared store directory.
func startCoordinator(t *testing.T) (string, string, *cluster.Coordinator) {
	t.Helper()
	dir := t.TempDir()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	co, err := cluster.NewCoordinator(cluster.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	mux := http.NewServeMux()
	co.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL, dir, co
}

// driveWorker executes every pending assignment in-process so roadctl
// has a finished campaign to inspect.
func driveWorker(t *testing.T, base, dir string) {
	t.Helper()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	client := cluster.NewClient(base, "w1")
	if err := client.Register(2); err != nil {
		t.Fatal(err)
	}
	runner := cluster.NewRunner(store, 2, func(int) {})
	for {
		asgs, err := client.Claims(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(asgs) == 0 {
			return
		}
		for _, asg := range asgs {
			if err := client.Start(asg.Lease); err != nil {
				continue
			}
			if err := client.Complete(asg.Lease, runner.Run(asg)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

const testManifest = `{"name":"ctl","env":"tiny","rounds":2,"strategies":[{"kind":"fedavg"},{"kind":"opp"}],"seeds":[1]}`

// TestRoadctlFullFlow exercises every subcommand against a live
// coordinator: submit, run the campaign, then status, nodes, watch, and
// result (both stdout and -o file).
func TestRoadctlFullFlow(t *testing.T) {
	base, dir, co := startCoordinator(t)

	mf := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(mf, []byte(testManifest), 0o644); err != nil {
		t.Fatal(err)
	}
	var submitOut strings.Builder
	if err := run([]string{"-addr", base, "submit", "-f", mf}, &submitOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(submitOut.String(), `"id"`) {
		t.Fatalf("submit output missing id: %s", submitOut.String())
	}
	ids := co.Campaigns()
	if len(ids) != 1 {
		t.Fatalf("coordinator has %d campaigns, want 1", len(ids))
	}
	id := ids[0].ID

	driveWorker(t, base, dir)

	var statusOut strings.Builder
	if err := run([]string{"-addr", base, "status", id}, &statusOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statusOut.String(), `"done": true`) {
		t.Fatalf("status output not done: %s", statusOut.String())
	}

	var nodesOut strings.Builder
	if err := run([]string{"-addr", base, "nodes"}, &nodesOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nodesOut.String(), `"name": "w1"`) {
		t.Fatalf("nodes output missing worker: %s", nodesOut.String())
	}

	// The campaign is done, so the SSE stream delivers its snapshot and
	// closes on the terminal event; watch must return with the snapshot
	// printed as a plain line.
	var watchOut strings.Builder
	if err := run([]string{"-addr", base, "watch", id}, &watchOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(watchOut.String(), `"type":"snapshot"`) {
		t.Fatalf("watch output missing snapshot: %s", watchOut.String())
	}

	var resultOut strings.Builder
	if err := run([]string{"-addr", base, "result", id}, &resultOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resultOut.String(), "roadrunner-merge-v1") {
		t.Fatalf("result output missing merge header: %.60s", resultOut.String())
	}
	outFile := filepath.Join(t.TempDir(), "merged.txt")
	if err := run([]string{"-addr", base, "result", "-o", outFile, id}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fromFile, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(fromFile) != resultOut.String() {
		t.Fatalf("-o file differs from stdout result (%d vs %d bytes)", len(fromFile), resultOut.Len())
	}
}

// TestRoadctlSubmitFromStdin feeds the manifest through "-f -".
func TestRoadctlSubmitFromStdin(t *testing.T) {
	base, _, co := startCoordinator(t)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = orig }()
	if _, err := w.WriteString(testManifest); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	var out strings.Builder
	if err := run([]string{"-addr", base, "submit", "-f", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	if len(co.Campaigns()) != 1 {
		t.Fatalf("stdin submit did not register a campaign")
	}
}

// TestRoadctlErrors: usage mistakes and server-side failures surface as
// errors, not panics or silent exits.
func TestRoadctlErrors(t *testing.T) {
	base, _, _ := startCoordinator(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no command", []string{"-addr", base}},
		{"unknown command", []string{"-addr", base, "frobnicate"}},
		{"submit without file", []string{"-addr", base, "submit"}},
		{"submit missing file", []string{"-addr", base, "submit", "-f", "/nonexistent/manifest.json"}},
		{"status without id", []string{"-addr", base, "status"}},
		{"status unknown id", []string{"-addr", base, "status", "c9999-none"}},
		{"watch without id", []string{"-addr", base, "watch"}},
		{"watch unknown id", []string{"-addr", base, "watch", "c9999-none"}},
		{"result without id", []string{"-addr", base, "result"}},
		{"result unknown id", []string{"-addr", base, "result", "c9999-none"}},
		{"unreachable server", []string{"-addr", "http://127.0.0.1:1", "nodes"}},
	} {
		if err := run(tc.args, &strings.Builder{}); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
